//! The multi-column conjunctive query planner.
//!
//! `AdaptiveTable::query_conjunctive` used to materialize every predicate's
//! full row set and intersect sorted vectors — "one adaptive column, N
//! times". This module turns that into planned execution:
//!
//! 1. **Estimate** — every predicate's result cardinality is estimated from
//!    cheap per-column state: zone-grained page statistics ([`ZoneStats`],
//!    min/max value bands over fixed page groups, built once when a column
//!    joins the table and widened on writes) refined by the router's view
//!    state (a covering partial view bounds the pages the adaptive path
//!    would touch).
//! 2. **Order** — predicates execute cheapest-first: the most selective
//!    predicate becomes the *driving scan* and runs through the ordinary
//!    adaptive path (routing, scanning, candidate-view maintenance).
//! 3. **Probe** — the remaining predicates are evaluated as semi-join
//!    residual probes: each one re-checks only the rows that survived the
//!    previous steps, touching only the physical pages containing those
//!    rows (the probe mode of `asv_storage::ScanKernel`).
//!
//! Probes are cheap but build no views. So every probe against a column
//! whose views could *not* have covered the predicate feeds that column's
//! [`ProbeTracker`] with the predicate's [`ZoneStats`] page estimate; once
//! the accumulated page cost of uncovered probes reaches the planner's
//! budget (cost-based, not probe-count-based), the planner
//! *promotes* the predicate to a full adaptive scan ([`StepKind::
//! AdaptiveScan`]) on its next execution — the column gets its chance to
//! materialize a partial view, and the tracker resets. This keeps partial
//! views adapting under multi-column workloads even though most residual
//! work is probed.

use asv_storage::Column;
use asv_util::{Parallelism, ValueRange};
use asv_vmem::{Backend, VALUES_PER_PAGE};

use crate::adaptive::AdaptiveColumn;
use crate::query::RangeQuery;
use crate::router::route;

/// Upper bound on the number of zones [`ZoneStats`] keeps per column; small
/// columns get one zone per page (exact page bands), large columns aggregate
/// `num_pages / MAX_ZONES` pages per zone so planning cost stays bounded.
pub const MAX_ZONES: usize = 4096;

/// Zone-grained value statistics of one column: the min/max band of every
/// fixed-size page group.
///
/// Built with one sequential pass when the column joins the table; writes
/// *widen* the affected zone's band ([`ZoneStats::note_write`]), so bands
/// may grow pessimistic under updates but never exclude a value actually
/// present — estimates degrade gracefully instead of becoming wrong.
#[derive(Clone, Debug)]
pub struct ZoneStats {
    /// Per-zone `(min, max)` over the zone's valid values; `None` for zones
    /// without any values.
    zones: Vec<Option<(u64, u64)>>,
    /// Per-zone count of valid values, so partially-filled trailing pages
    /// (and with them sparse columns) don't inflate row estimates to the
    /// zone's full page capacity.
    rows: Vec<usize>,
    pages_per_zone: usize,
    num_pages: usize,
    num_rows: usize,
}

/// A cardinality estimate derived from [`ZoneStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CardinalityEstimate {
    /// Estimated number of qualifying rows.
    pub est_rows: u64,
    /// Estimated number of pages holding at least one qualifying value
    /// (zone-granular upper bound).
    pub est_pages: usize,
}

impl ZoneStats {
    /// Builds the statistics with one pass over the column's pages.
    ///
    /// Each zone's band folds over its pages' valid values through the
    /// chunked [`asv_storage::fold_min_max_chunked`] kernel — one running
    /// `(min, max)` accumulator per zone instead of a per-page `Option`
    /// reduce-and-merge — and the same pass counts the zone's valid values,
    /// which [`ZoneStats::estimate`] uses as the row mass.
    pub fn build<B: Backend>(column: &Column<B>) -> Self {
        let num_pages = column.num_pages();
        let pages_per_zone = num_pages.div_ceil(MAX_ZONES).max(1);
        let num_zones = num_pages.div_ceil(pages_per_zone);
        let mut zones: Vec<Option<(u64, u64)>> = vec![None; num_zones];
        let mut rows: Vec<usize> = vec![0; num_zones];
        for (zone_idx, zone) in zones.iter_mut().enumerate() {
            let first = zone_idx * pages_per_zone;
            let last = (first + pages_per_zone).min(num_pages);
            let mut acc = (u64::MAX, 0u64);
            let mut zone_rows = 0usize;
            for page in first..last {
                let values = column.page_ref(page);
                let values = values.values();
                zone_rows += values.len();
                acc = asv_storage::fold_min_max_chunked(values, acc);
            }
            rows[zone_idx] = zone_rows;
            if zone_rows > 0 {
                *zone = Some(acc);
            }
        }
        Self {
            zones,
            rows,
            pages_per_zone,
            num_pages,
            num_rows: column.num_rows(),
        }
    }

    /// Number of zones kept.
    pub fn num_zones(&self) -> usize {
        self.zones.len()
    }

    /// Pages aggregated per zone.
    pub fn pages_per_zone(&self) -> usize {
        self.pages_per_zone
    }

    /// Number of valid values counted in zone `zone` at build time (0 for
    /// out-of-bounds zones). Updates don't change the count — they replace
    /// values in place — so the count stays exact under writes.
    pub fn zone_rows(&self, zone: usize) -> usize {
        self.rows.get(zone).copied().unwrap_or(0)
    }

    /// The zone index covering `row` (rows past the column map to the last
    /// zone, matching [`ZoneStats::note_write`]'s saturation behaviour).
    pub fn zone_of_row(&self, row: usize) -> usize {
        let zone = (row / VALUES_PER_PAGE) / self.pages_per_zone;
        zone.min(self.zones.len().saturating_sub(1))
    }

    /// The `(min, max)` band of zone `zone` as a [`ValueRange`], or `None`
    /// when the zone holds no values (or is out of bounds).
    pub fn zone_band(&self, zone: usize) -> Option<ValueRange> {
        self.zones
            .get(zone)
            .copied()
            .flatten()
            .map(|(lo, hi)| ValueRange::new(lo, hi))
    }

    /// Widens the band of the zone containing `row` to include `new_value`.
    ///
    /// Bands only grow (the old value's contribution is not retracted), so
    /// repeated updates make estimates pessimistic, never unsound.
    pub fn note_write(&mut self, row: usize, new_value: u64) {
        let page = row / VALUES_PER_PAGE;
        if let Some(zone) = self.zones.get_mut(page / self.pages_per_zone) {
            *zone = Some(match zone {
                Some((a, b)) => ((*a).min(new_value), (*b).max(new_value)),
                None => (new_value, new_value),
            });
        }
    }

    /// Estimates result cardinality and qualifying pages for `range`,
    /// assuming values spread uniformly within each zone's band.
    ///
    /// The row mass of each zone is its *counted* valid values (not the
    /// zone's page capacity), so sparse columns and partially-filled
    /// trailing pages don't over-estimate the touched bands.
    pub fn estimate(&self, range: &ValueRange) -> CardinalityEstimate {
        let mut est_pages = 0usize;
        let mut est_rows = 0.0f64;
        for (idx, zone) in self.zones.iter().enumerate() {
            let Some((lo, hi)) = zone else { continue };
            let band = ValueRange::new(*lo, *hi);
            let Some(overlap) = band.intersect(range) else {
                continue;
            };
            // The last zone may be partial: count its actual pages.
            let zone_pages = self
                .pages_per_zone
                .min(self.num_pages - idx * self.pages_per_zone);
            est_pages += zone_pages;
            let fraction = (overlap.width() as f64 / band.width() as f64).min(1.0);
            est_rows += fraction * self.rows[idx] as f64;
        }
        CardinalityEstimate {
            est_rows: (est_rows.round() as u64).min(self.num_rows as u64),
            est_pages: est_pages.min(self.num_pages),
        }
    }
}

/// The per-predicate estimate a plan is ordered by.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredicateEstimate {
    /// Estimated result cardinality (zone statistics, view-bounded).
    pub est_rows: u64,
    /// Estimated qualifying pages (zone statistics).
    pub est_pages: usize,
    /// Pages the adaptive path would scan for this predicate, as routed
    /// against the column's current view set.
    pub routed_pages: usize,
    /// `true` if routing falls back to the full view (no partial-view
    /// cover exists) — the signal the probe tracker counts.
    pub full_scan_fallback: bool,
}

/// How one plan step is executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepKind {
    /// The driving predicate: the full adaptive path produces the initial
    /// survivor set (and maintains views as usual).
    DrivingScan,
    /// A promoted residual: runs the full adaptive path concurrently with
    /// the driving scan so the column can materialize a partial view; its
    /// row set is intersected with the survivors.
    AdaptiveScan,
    /// A semi-join residual probe restricted to the surviving rows.
    Probe,
}

/// One step of a [`ConjunctivePlan`].
#[derive(Clone, Debug)]
pub struct PlanStep {
    /// Index of the predicate in the caller's input slice.
    pub input_index: usize,
    /// Execution strategy of this step.
    pub kind: StepKind,
    /// The estimate that positioned the step.
    pub estimate: PredicateEstimate,
}

/// An ordered conjunctive execution plan. `steps` is the execution order:
/// the driving scan first, then promoted adaptive scans, then probes —
/// each group ordered by ascending estimated cardinality.
#[derive(Clone, Debug, Default)]
pub struct ConjunctivePlan {
    /// The steps in execution order.
    pub steps: Vec<PlanStep>,
}

impl ConjunctivePlan {
    /// The driving step (always present for a non-empty plan).
    pub fn driving(&self) -> Option<&PlanStep> {
        self.steps.first()
    }

    /// `executed_order[k]` = input index of the `k`-th executed step.
    pub fn executed_order(&self) -> Vec<usize> {
        self.steps.iter().map(|s| s.input_index).collect()
    }

    /// Number of steps running the full adaptive path.
    pub fn num_scans(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| s.kind != StepKind::Probe)
            .count()
    }

    /// Number of semi-join probe steps.
    pub fn num_probes(&self) -> usize {
        self.steps.len() - self.num_scans()
    }
}

/// One same-column group of a conjunction after predicate merging: the
/// intersection of every input range over one column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergedPredicate {
    /// Input position of the column's *first* predicate — the merged
    /// predicate answers for this representative in `executed_order`.
    pub input_idx: usize,
    /// The column all merged inputs filter.
    pub col_idx: usize,
    /// Intersection of the column's input ranges.
    pub range: ValueRange,
}

/// Merges same-column predicates of a conjunction into one closed range per
/// column (the conjunction of ranges over one column *is* their
/// intersection), preserving first-occurrence order. Returns `None` when
/// some column's predicates are mutually unsatisfiable — the whole
/// conjunction is provably empty and need not touch any column.
///
/// Besides unlocking planned execution for duplicate-column conjunctions
/// (which previously fell back to the naive path), this keeps each view
/// set's dependency-graph footprint at one interval per column per query.
pub fn merge_same_column(predicates: &[(usize, ValueRange)]) -> Option<Vec<MergedPredicate>> {
    let mut merged: Vec<MergedPredicate> = Vec::with_capacity(predicates.len());
    for (input_idx, &(col_idx, range)) in predicates.iter().enumerate() {
        match merged.iter_mut().find(|m| m.col_idx == col_idx) {
            Some(existing) => existing.range = existing.range.intersect(&range)?,
            None => merged.push(MergedPredicate {
                input_idx,
                col_idx,
                range,
            }),
        }
    }
    Some(merged)
}

/// One predicate's planning input: the column it targets, that column's
/// zone statistics, the query, and whether the column's probe tracker has
/// requested promotion.
pub struct PlanInput<'a, B: Backend> {
    /// The adaptive column the predicate filters.
    pub column: &'a AdaptiveColumn<B>,
    /// The column's zone statistics.
    pub stats: &'a ZoneStats,
    /// The predicate.
    pub query: &'a RangeQuery,
    /// `true` if this predicate should run the full adaptive path even when
    /// it is not the driving predicate (probe-tracker promotion).
    pub promoted: bool,
}

/// Builds the selectivity-ordered plan for one conjunctive query.
///
/// Pure with respect to the columns: routing is consulted immutably, no
/// views are created or modified. Ties break on the input index, so plans
/// are fully deterministic.
pub fn plan_conjunctive<B: Backend>(inputs: &[PlanInput<'_, B>]) -> ConjunctivePlan {
    let mut estimated: Vec<(usize, PredicateEstimate, bool)> = inputs
        .iter()
        .enumerate()
        .map(|(i, input)| {
            let selection = route(
                input.column.column(),
                input.column.views(),
                input.query.range(),
                input.column.config().routing,
            );
            let card = input.stats.estimate(input.query.range());
            // A covering (partial-)view selection bounds the qualifying
            // rows by the pages it indexes.
            let view_bound = (selection.indexed_pages * VALUES_PER_PAGE) as u64;
            let estimate = PredicateEstimate {
                est_rows: card.est_rows.min(view_bound),
                est_pages: card.est_pages,
                routed_pages: selection.indexed_pages,
                full_scan_fallback: selection.is_full_scan(),
            };
            (i, estimate, input.promoted)
        })
        .collect();
    estimated.sort_by_key(|(i, e, _)| (e.est_rows, e.est_pages, e.routed_pages, *i));

    let mut steps: Vec<PlanStep> = Vec::with_capacity(estimated.len());
    // The cheapest predicate drives; promoted residuals scan; the rest probe.
    for (pos, (input_index, estimate, promoted)) in estimated.iter().enumerate() {
        let kind = if pos == 0 {
            StepKind::DrivingScan
        } else if *promoted {
            StepKind::AdaptiveScan
        } else {
            StepKind::Probe
        };
        steps.push(PlanStep {
            input_index: *input_index,
            kind,
            estimate: *estimate,
        });
    }
    // Execution order: scans (driving + promoted) first, then probes, each
    // group keeping its selectivity order.
    steps.sort_by_key(|s| s.kind == StepKind::Probe);
    ConjunctivePlan { steps }
}

/// Per-column accounting of semi-join probes, driving view-adaptation
/// promotion.
///
/// A probe answers a predicate exactly but builds no partial view. The
/// tracker counts probes whose predicate the column's views could *not*
/// have covered (routing would fall back to the full view); once
/// [`ProbeTracker::should_promote`] trips, the planner runs that column's
/// next residual predicate through the full adaptive path instead, and the
/// executed promotion resets the tracker.
#[derive(Clone, Debug, Default)]
pub struct ProbeTracker {
    probes: usize,
    uncovered_probes: usize,
    uncovered_cost_pages: usize,
    probed_hull: Option<ValueRange>,
}

impl ProbeTracker {
    /// Total probes recorded since the last reset.
    pub fn probes(&self) -> usize {
        self.probes
    }

    /// Probes whose range no partial view covered.
    pub fn uncovered_probes(&self) -> usize {
        self.uncovered_probes
    }

    /// Accumulated [`ZoneStats`] page estimates of the uncovered probes:
    /// the scan work a partial view *would have saved*, had one existed.
    pub fn uncovered_cost_pages(&self) -> usize {
        self.uncovered_cost_pages
    }

    /// Hull of all probed ranges since the last reset.
    pub fn probed_hull(&self) -> Option<ValueRange> {
        self.probed_hull
    }

    /// Records a probe against `range`; `covered` says whether the column's
    /// partial views could have answered the predicate without the full
    /// view, `est_pages` is the [`ZoneStats`] page estimate of the
    /// predicate (the pages a full adaptive scan would have touched — an
    /// uncovered probe always accrues at least one page so promotion never
    /// stalls on empty estimates).
    pub fn note_probe(&mut self, range: &ValueRange, covered: bool, est_pages: usize) {
        self.probes += 1;
        if !covered {
            self.uncovered_probes += 1;
            self.uncovered_cost_pages += est_pages.max(1);
        }
        self.probed_hull = Some(match self.probed_hull {
            Some(hull) => hull.hull(range),
            None => *range,
        });
    }

    /// Returns `true` once the accumulated uncovered-probe page cost
    /// reaches `threshold_pages` (a threshold of 0 never promotes).
    ///
    /// Cost-based rather than count-based: a handful of probes over wide,
    /// expensive predicates justifies building a view sooner than many
    /// probes over single-page predicates.
    pub fn should_promote(&self, threshold_pages: usize) -> bool {
        threshold_pages > 0 && self.uncovered_cost_pages >= threshold_pages
    }

    /// Clears the tracker (called after the column ran the adaptive path).
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

/// Table-level planner configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannerConfig {
    /// `false` routes every conjunctive query through the naive
    /// scan-all-then-intersect path (useful as an equivalence baseline).
    pub enabled: bool,
    /// Page-cost budget of probe promotion: once the [`ZoneStats`] page
    /// estimates of a column's uncovered probes sum to at least this many
    /// pages, its next residual predicate is promoted to a full adaptive
    /// scan (so the column can materialize a view whose savings now
    /// outweigh its build cost); `0` disables promotion.
    pub promote_cost_pages: usize,
    /// Fork-join parallelism across the *independent column scans* of one
    /// plan (the driving scan plus promoted scans run concurrently). Scans
    /// and probes additionally honour each column's own
    /// [`crate::AdaptiveConfig::parallelism`] internally.
    pub parallelism: Parallelism,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            promote_cost_pages: 32,
            parallelism: Parallelism::Sequential,
        }
    }
}

impl PlannerConfig {
    /// Builder-style switch for planned execution.
    pub fn with_enabled(mut self, enabled: bool) -> Self {
        self.enabled = enabled;
        self
    }

    /// Builder-style setter for the promotion page-cost budget.
    pub fn with_promote_cost_pages(mut self, promote_cost_pages: usize) -> Self {
        self.promote_cost_pages = promote_cost_pages;
        self
    }

    /// Builder-style setter for the cross-column fork-join parallelism.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AdaptiveConfig;
    use asv_vmem::SimBackend;

    /// Clustered data: page p holds values in [p*1000, p*1000 + 510].
    fn clustered_values(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    fn column(pages: usize) -> AdaptiveColumn<SimBackend> {
        AdaptiveColumn::from_values(
            SimBackend::new(),
            &clustered_values(pages),
            AdaptiveConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn zone_stats_are_exact_on_small_columns() {
        let col = column(16);
        let stats = ZoneStats::build(col.column());
        assert_eq!(stats.num_zones(), 16);
        assert_eq!(stats.pages_per_zone(), 1);
        // Pages 5..=9 qualify for [5000, 9400].
        let est = stats.estimate(&ValueRange::new(5_000, 9_400));
        assert_eq!(est.est_pages, 5);
        assert!(est.est_rows > 0);
        // A range outside the domain estimates empty.
        let est = stats.estimate(&ValueRange::new(50_000, 60_000));
        assert_eq!(est, CardinalityEstimate::default());
    }

    #[test]
    fn zone_stats_aggregate_large_columns() {
        let values = clustered_values(2 * MAX_ZONES + 10);
        let col = Column::from_values(SimBackend::new(), &values).unwrap();
        let stats = ZoneStats::build(&col);
        assert_eq!(stats.pages_per_zone(), 3);
        assert!(stats.num_zones() <= MAX_ZONES);
        let est = stats.estimate(&ValueRange::new(0, 5_000));
        assert!(est.est_pages >= 5);
    }

    #[test]
    fn zone_row_counts_track_partial_pages() {
        // Three full clustered pages plus a 10-value tail page.
        let mut values = clustered_values(3);
        values.extend((0..10u64).map(|i| 3_000 + i));
        let col = Column::from_values(SimBackend::new(), &values).unwrap();
        let stats = ZoneStats::build(&col);
        assert_eq!(stats.num_zones(), 4);
        assert_eq!(stats.zone_rows(0), VALUES_PER_PAGE);
        assert_eq!(stats.zone_rows(3), 10);
        assert_eq!(stats.zone_rows(4), 0, "out of bounds counts as empty");
        // The tail zone estimates its actual 10 values, not the page
        // capacity of 511.
        let est = stats.estimate(&ValueRange::new(3_000, 3_009));
        assert_eq!(est.est_pages, 1);
        assert_eq!(est.est_rows, 10);
    }

    #[test]
    fn note_write_widens_the_band() {
        let col = column(8);
        let mut stats = ZoneStats::build(col.column());
        let narrow = ValueRange::new(900_000, 950_000);
        assert_eq!(stats.estimate(&narrow).est_pages, 0);
        stats.note_write(3 * VALUES_PER_PAGE, 920_000);
        assert!(stats.estimate(&narrow).est_pages >= 1);
    }

    #[test]
    fn plan_orders_by_estimated_cardinality() {
        let wide_col = column(16);
        let narrow_col = column(16);
        let wide_stats = ZoneStats::build(wide_col.column());
        let narrow_stats = ZoneStats::build(narrow_col.column());
        let wide = RangeQuery::new(0, 12_000); // ~13 pages
        let narrow = RangeQuery::new(5_000, 6_000); // ~2 pages
        let plan = plan_conjunctive(&[
            PlanInput {
                column: &wide_col,
                stats: &wide_stats,
                query: &wide,
                promoted: false,
            },
            PlanInput {
                column: &narrow_col,
                stats: &narrow_stats,
                query: &narrow,
                promoted: false,
            },
        ]);
        assert_eq!(plan.steps.len(), 2);
        assert_eq!(plan.driving().unwrap().input_index, 1);
        assert_eq!(plan.driving().unwrap().kind, StepKind::DrivingScan);
        assert_eq!(plan.steps[1].kind, StepKind::Probe);
        assert_eq!(plan.executed_order(), vec![1, 0]);
        assert_eq!(plan.num_scans(), 1);
        assert_eq!(plan.num_probes(), 1);
        assert!(plan.steps[0].estimate.est_rows <= plan.steps[1].estimate.est_rows);
    }

    #[test]
    fn promoted_predicates_scan_before_probes() {
        let cols: Vec<AdaptiveColumn<SimBackend>> = (0..3).map(|_| column(16)).collect();
        let stats: Vec<ZoneStats> = cols.iter().map(|c| ZoneStats::build(c.column())).collect();
        let q0 = RangeQuery::new(5_000, 6_000); // driving (cheapest)
        let q1 = RangeQuery::new(0, 12_000); // widest, promoted
        let q2 = RangeQuery::new(2_000, 8_000); // middle, probed
        let plan = plan_conjunctive(&[
            PlanInput {
                column: &cols[0],
                stats: &stats[0],
                query: &q0,
                promoted: false,
            },
            PlanInput {
                column: &cols[1],
                stats: &stats[1],
                query: &q1,
                promoted: true,
            },
            PlanInput {
                column: &cols[2],
                stats: &stats[2],
                query: &q2,
                promoted: false,
            },
        ]);
        let kinds: Vec<StepKind> = plan.steps.iter().map(|s| s.kind).collect();
        assert_eq!(
            kinds,
            vec![
                StepKind::DrivingScan,
                StepKind::AdaptiveScan,
                StepKind::Probe
            ]
        );
        assert_eq!(plan.executed_order(), vec![0, 1, 2]);
        assert_eq!(plan.num_scans(), 2);
    }

    #[test]
    fn routing_refines_the_estimate() {
        let mut col = column(32);
        // Materialize a small covering view for [5000, 9400] (5 pages).
        col.query(&RangeQuery::new(5_000, 9_400)).unwrap();
        let stats = ZoneStats::build(col.column());
        let q = RangeQuery::new(6_000, 8_000);
        let plan = plan_conjunctive(&[PlanInput {
            column: &col,
            stats: &stats,
            query: &q,
            promoted: false,
        }]);
        let est = plan.driving().unwrap().estimate;
        assert!(!est.full_scan_fallback);
        assert!(est.routed_pages <= 5);
        assert!(est.est_rows <= (est.routed_pages * VALUES_PER_PAGE) as u64);
    }

    #[test]
    fn probe_tracker_promotes_on_accumulated_page_cost() {
        let mut t = ProbeTracker::default();
        assert!(!t.should_promote(8));
        // Covered probes accrue no cost, whatever their estimate.
        t.note_probe(&ValueRange::new(0, 10), true, 100);
        assert_eq!(t.probes(), 1);
        assert_eq!(t.uncovered_probes(), 0);
        assert_eq!(t.uncovered_cost_pages(), 0);
        // Uncovered probes accrue their page estimates; a wide predicate
        // reaches the budget faster than many narrow ones.
        t.note_probe(&ValueRange::new(20, 30), false, 5);
        assert!(!t.should_promote(8));
        t.note_probe(&ValueRange::new(5, 15), false, 3);
        assert_eq!(t.uncovered_probes(), 2);
        assert_eq!(t.uncovered_cost_pages(), 8);
        assert!(t.should_promote(8));
        assert!(!t.should_promote(0), "threshold 0 disables promotion");
        assert_eq!(t.probed_hull(), Some(ValueRange::new(0, 30)));
        t.reset();
        assert_eq!(t.probes(), 0);
        assert_eq!(t.uncovered_cost_pages(), 0);
        assert_eq!(t.probed_hull(), None);
    }

    #[test]
    fn empty_estimates_still_accrue_promotion_cost() {
        let mut t = ProbeTracker::default();
        for _ in 0..3 {
            t.note_probe(&ValueRange::new(0, 1), false, 0);
        }
        assert_eq!(t.uncovered_cost_pages(), 3, "floor of one page per probe");
        assert!(t.should_promote(3));
    }

    #[test]
    fn planner_config_builders() {
        let c = PlannerConfig::default();
        assert!(c.enabled);
        assert_eq!(c.promote_cost_pages, 32);
        assert_eq!(c.parallelism, Parallelism::Sequential);
        let c = c
            .with_enabled(false)
            .with_promote_cost_pages(7)
            .with_parallelism(Parallelism::Threads(2));
        assert!(!c.enabled);
        assert_eq!(c.promote_cost_pages, 7);
        assert_eq!(c.parallelism, Parallelism::Threads(2));
    }
}
