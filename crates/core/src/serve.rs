//! The shared-table concurrent serving layer: epoch-pinned reader
//! snapshots over a single-writer maintenance loop.
//!
//! Every structure of the adaptive layer so far is single-threaded: one
//! owner interleaves queries, writes and alignment rounds on one thread.
//! This module lifts a whole table into a *serving* arrangement in which
//!
//! * **N reader threads** hold cheap [`TableHandle`]s and pin
//!   epoch-consistent [`Snapshot`]s ([`TableHandle::pin`]) to run full
//!   queries — routed range scans, planned conjunctive queries, point
//!   probes — without taking any lock, and
//! * **one maintenance thread** owns the [`ServeTable`]: it ingests
//!   writes, folds the write queue into background alignment rounds,
//!   publishes re-aligned view epochs chunk by chunk, and reclaims
//!   superseded epochs once the last pinned reader lets go.
//!
//! # The epoch protocol
//!
//! The handoff primitive is [`asv_util::EpochCell`] (userspace RCU): the
//! maintainer [`publishes`](asv_util::EpochCell::publish) immutable
//! [`TableEpoch`]s, readers pin the latest one with two atomic stores and
//! keep it alive through an [`Arc`] for as long as they need it. A pin
//! never blocks on a publish and a publish never waits for readers — old
//! epochs are reclaimed lazily ([`asv_util::EpochCell::try_reclaim`]) when
//! the last pin drops.
//!
//! A [`TableEpoch`] is a frozen, self-contained description of what a
//! reader may touch:
//!
//! * one shared full view per column (`Arc<B::View>`, mapped once at
//!   column creation and never remapped — slot `i` is physical page `i`),
//! * per partial view the **physical page list** of its slots
//!   ([`ViewMeta`]), recomputed by the maintainer after each published
//!   alignment chunk — readers scan view pages *through the full view* by
//!   physical id, so no view buffer is ever shared mutably,
//! * the write overlay of the epoch: queued `(row, value)` pairs plus the
//!   precomputed scan [`ExclusionMasks`] over them,
//! * **frozen page copies** for every page holding an overlaid row: the
//!   maintainer folds queued writes into the physical store *while
//!   readers are scanning*, so any page a fold may write is snapshotted
//!   into the epoch first and readers substitute the copy for the live
//!   page ([`ColumnEpoch`] keeps answers identical either way — folded
//!   rows stay masked-and-overlaid until the round retires them),
//! * a [`ZoneStats`] clone for conjunctive planning.
//!
//! # The maintenance loop
//!
//! [`ServeTable::write`] stages a write: the value enters the overlay, the
//! row's page is frozen into the copy set, the column's zone bands widen to
//! cover the new value, and the acknowledgement becomes visible to *new*
//! pins at the next [`ServeTable::tick`] (which publishes a new epoch).
//! Each tick then drains the column's **delta queue**: planned chunks are
//! exploded into per-view work items (hottest views first — see
//! [`crate::align::DeltaWorkItem`]) and at most
//! `AlignChunking::delta_items_per_tick` items are applied and published
//! per call, so the per-tick publish work is bounded by single views, not
//! whole rounds, and interleaves with group-commit folding. When a fold
//! starts, the maintainer consults the view set's
//! [`crate::align::ViewDepGraph`] (`AlignChunking::incremental_align`,
//! on by default) so only views whose predicate ranges intersect the
//! batch's touched zones are snapshotted and replanned at all — untouched
//! views keep their epoch verbatim. When the round's last item lands, the
//! folded rows retire from the overlay and the remaining overlay pages are
//! re-frozen from the post-fold store. New rounds fold the queue only
//! after a **grace check**: every epoch except the current one must be
//! unpinned, because older epochs may lack page copies for the rows about
//! to be folded. The fold itself never blocks the writer — if grace has
//! not elapsed the fold is simply retried on a later tick while writes
//! keep queueing.
//!
//! Within one round all published epochs give bit-identical answers: a
//! chunk publish only changes *which* pages a view scans (rows folded by
//! the round stay masked until retirement, and the retire epoch swaps
//! their source from overlay to store without changing values). This is
//! what makes the serving layer deterministic: concurrent readers pinning
//! *different* mid-round epochs still compute identical results.
//!
//! # Morsel-parallel reads
//!
//! A pinned snapshot can additionally fork-join its *own* queries across
//! an [`asv_util::ThreadPool`]: [`TableHandle::with_parallelism`] sets a
//! per-handle [`Parallelism`] knob and every routed scan and semi-join
//! probe then splits its page list into contiguous page-id morsels
//! ([`asv_util::split_ranges`], one per worker), scans them on worker
//! threads, and merges the shard outputs back in ascending shard order —
//! the same merge discipline the sharded executor in [`crate::exec`]
//! uses, so answers are bit-identical to the sequential path for every
//! worker count. The epoch stays pinned for the duration; workers only
//! read frozen state (`Arc`ed views, copies, masks), so no coordination
//! with the maintenance thread is needed.
//!
//! # The sharded ingest front door
//!
//! Multi-writer ingest goes through cloneable [`TableWriter`] handles
//! ([`ServeTable::writer`]): `writer_shards` MPSC lanes, hashed by the
//! row's page group ([`writer_shard_of`]), carry acknowledged writes from
//! any number of writer threads to the maintenance thread, which drains
//! every lane at the top of each [`ServeTable::tick`] — so staged writes
//! become readable at the same tick boundary as direct maintenance-thread
//! writes, and commit-before-fold / grace-before-fold are untouched
//! (draining happens strictly before the tick's first publish). Each lane
//! is a FIFO channel and a row always hashes to the same lane, so writes
//! from one writer thread to one row apply in send order. Backpressure is
//! per-shard: a fold triggers when any one shard's distinct overlaid rows
//! reach `max_queued_writes / writer_shards` instead of waiting for the
//! global total.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::{mpsc, Arc};

use asv_storage::{
    copy_values_chunked, Column, ExclusionMasks, PageRef, ScanKernel, ScanMode, ScanOutput,
};
use asv_util::{
    split_ranges, EpochCell, Parallelism, Pinned, Reader, ThreadPool, Timer, ValueRange,
};
use asv_vmem::{Backend, ViewBuffer, VmemError, VALUES_PER_PAGE};

use crate::align::{
    apply_plan, compute_alignment_delta, snapshot_alignment, snapshot_alignment_delta,
    spawn_alignment_chunked, AlignmentPlan, PendingChunkedAlignment, WriteOverlay,
};
use crate::config::AdaptiveConfig;
use crate::creation::build_view_for_range;
use crate::plan::ZoneStats;
use crate::viewset::ViewSet;
use crate::wal::{self, FaultPlan, Journal, WalRecord};

/// Frozen metadata of one partial view inside an epoch: its covered range
/// and the physical pages its slots map, in slot order.
///
/// Readers never touch the partial view's buffer — they scan the listed
/// physical pages through the column's immutable full view, which is
/// mapped identically (slot `i` = physical page `i`) for the whole run.
#[derive(Clone, Debug)]
pub struct ViewMeta {
    /// The value range the view covers.
    pub range: ValueRange,
    /// Physical page ids of the view's mapped slots, in slot order.
    pub phys: Vec<usize>,
}

/// The frozen per-column state of one epoch.
pub struct ColumnEpoch<B: Backend> {
    /// The immutable identity-mapped full view (slot `i` = physical page
    /// `i`), shared across all epochs of the column.
    full_view: Arc<B::View>,
    num_rows: usize,
    num_pages: usize,
    /// Partial-view metadata, one entry per view in the maintainer's
    /// [`ViewSet`]; untouched views share their `Arc` across epochs.
    views: Vec<Arc<ViewMeta>>,
    /// Overlaid `(row, value)` pairs, ascending by row.
    overlay: Arc<Vec<(u64, u64)>>,
    /// Scan exclusion masks over the overlaid rows.
    masks: Arc<ExclusionMasks>,
    /// Frozen copies of every page holding an overlaid row, keyed by
    /// physical page id. A fold may write these pages concurrently with
    /// readers of this epoch; the copy is the race-free source.
    copies: Arc<HashMap<usize, Arc<Vec<u64>>>>,
    /// Zone statistics for conjunctive predicate ordering.
    stats: Arc<ZoneStats>,
}

impl<B: Backend> ColumnEpoch<B> {
    /// Number of rows of the column.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of overlaid (queued or aligning) rows in this epoch.
    pub fn overlaid_rows(&self) -> usize {
        self.overlay.len()
    }

    /// The raw slots of physical page `phys`: the epoch's frozen copy if
    /// the page holds an overlaid row, the live store page otherwise.
    fn page_raw(&self, phys: usize) -> &[u64] {
        match self.copies.get(&phys) {
            Some(copy) => copy.as_slice(),
            None => self.full_view.page(phys),
        }
    }

    /// Valid value count of physical page `phys` (the last page of a
    /// column may be partially filled).
    fn valid_values(&self, phys: usize) -> usize {
        let full_pages = self.num_rows / VALUES_PER_PAGE;
        if phys < full_pages {
            VALUES_PER_PAGE
        } else if phys == full_pages {
            self.num_rows % VALUES_PER_PAGE
        } else {
            // Pages past the data (a store sized with spare capacity)
            // hold no valid values.
            0
        }
    }

    /// The overlaid value of `row`, if the row is overlaid in this epoch.
    fn overlay_value(&self, row: u64) -> Option<u64> {
        self.overlay
            .binary_search_by_key(&row, |&(r, _)| r)
            .ok()
            .map(|idx| self.overlay[idx].1)
    }

    /// Single-view routing over the frozen view metadata: the covering
    /// view indexing the fewest pages, if it beats the full scan.
    fn route(&self, range: &ValueRange) -> Option<&ViewMeta> {
        self.views
            .iter()
            .filter(|v| v.range.covers(range))
            .min_by_key(|v| v.phys.len())
            .filter(|v| v.phys.len() < self.num_pages)
            .map(|v| v.as_ref())
    }

    fn scan_phys(&self, kernel: &ScanKernel<'_>, phys: usize, out: &mut ScanOutput) {
        let page = PageRef::new(self.page_raw(phys), self.valid_values(phys));
        kernel.scan_page(page, out);
    }

    /// Routed range scan: overlaid rows are masked out of the page scan
    /// and answered from the overlay, so every acknowledged write counts
    /// exactly once.
    ///
    /// With more than one pool worker the (routed or full) page list
    /// splits into contiguous morsels ([`split_ranges`], one per worker)
    /// that scan concurrently; the shard outputs merge back in ascending
    /// shard order, so collected rows append in the same page order the
    /// sequential loop produces and the answer is bit-identical for every
    /// worker count.
    fn scan(&self, range: &ValueRange, mode: ScanMode, pool: &ThreadPool) -> ScanOutput {
        let mut kernel = ScanKernel::new(*range, mode);
        if !self.masks.is_empty() {
            kernel = kernel.with_exclusion_masks(&self.masks);
        }
        let view_pages: Option<&[usize]> = self.route(range).map(|v| v.phys.as_slice());
        let num_pages = view_pages.map_or(self.num_pages, |p| p.len());
        let mut out = ScanOutput::new(mode, false);
        if pool.workers() <= 1 || num_pages < 2 {
            for idx in 0..num_pages {
                let phys = view_pages.map_or(idx, |p| p[idx]);
                self.scan_phys(&kernel, phys, &mut out);
            }
        } else {
            let tasks: Vec<_> = split_ranges(num_pages, pool.workers())
                .into_iter()
                .map(|shard| {
                    move || {
                        let mut partial = ScanOutput::new(mode, false);
                        for idx in shard {
                            let phys = view_pages.map_or(idx, |p| p[idx]);
                            self.scan_phys(&kernel, phys, &mut partial);
                        }
                        partial
                    }
                })
                .collect();
            for partial in pool.scoped_map(tasks) {
                out.merge(partial);
            }
        }
        self.merge_overlay(range, mode, &mut out);
        out
    }

    fn merge_overlay(&self, range: &ValueRange, mode: ScanMode, out: &mut ScanOutput) {
        for &(row, value) in self.overlay.iter() {
            if range.contains(value) {
                out.result.count += 1;
                if !matches!(mode, ScanMode::CountOnly) {
                    out.result.sum += value as u128;
                }
                if let Some(rows) = out.rows.as_mut() {
                    rows.push(row);
                }
            }
        }
        if let Some(rows) = out.rows.as_mut() {
            rows.sort_unstable();
        }
    }

    /// Semi-join probe of ascending candidate `rows` against `range`:
    /// overlaid candidates are answered from the overlay, the rest are
    /// probed per page (through copies where the epoch holds one).
    ///
    /// Like [`Self::scan`], the per-page probe runs fan out across the
    /// pool when it has more than one worker: the page runs split into
    /// contiguous morsels and the shard outputs merge in ascending shard
    /// order, then the final row sort canonicalizes — answers are
    /// bit-identical to the sequential path.
    fn probe(
        &self,
        range: &ValueRange,
        rows: &[u64],
        mode: ScanMode,
        pool: &ThreadPool,
    ) -> ScanOutput {
        let kernel = ScanKernel::new(*range, mode);
        let mut out = ScanOutput::new(mode, false);
        let mut phys_rows: Vec<u64> = Vec::with_capacity(rows.len());
        for &row in rows {
            match self.overlay_value(row) {
                Some(value) => {
                    if range.contains(value) {
                        out.result.count += 1;
                        if !matches!(mode, ScanMode::CountOnly) {
                            out.result.sum += value as u128;
                        }
                        if let Some(out_rows) = out.rows.as_mut() {
                            out_rows.push(row);
                        }
                    }
                }
                None => phys_rows.push(row),
            }
        }
        // Group the non-overlaid candidates into per-page runs.
        let mut runs: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        let mut start = 0usize;
        while start < phys_rows.len() {
            let page = (phys_rows[start] / VALUES_PER_PAGE as u64) as usize;
            let mut end = start + 1;
            while end < phys_rows.len()
                && (phys_rows[end] / VALUES_PER_PAGE as u64) as usize == page
            {
                end += 1;
            }
            runs.push((page, start..end));
            start = end;
        }
        if pool.workers() <= 1 || runs.len() < 2 {
            for (page, span) in runs {
                let page_ref = PageRef::new(self.page_raw(page), self.valid_values(page));
                kernel.probe_page_rows(page_ref, &phys_rows[span], &mut out);
            }
        } else {
            let phys_rows = &phys_rows;
            let runs = &runs;
            let tasks: Vec<_> = split_ranges(runs.len(), pool.workers())
                .into_iter()
                .map(|shard| {
                    move || {
                        let mut partial = ScanOutput::new(mode, false);
                        for (page, span) in &runs[shard] {
                            let page_ref =
                                PageRef::new(self.page_raw(*page), self.valid_values(*page));
                            kernel.probe_page_rows(
                                page_ref,
                                &phys_rows[span.clone()],
                                &mut partial,
                            );
                        }
                        partial
                    }
                })
                .collect();
            for partial in pool.scoped_map(tasks) {
                out.merge(partial);
            }
        }
        if let Some(out_rows) = out.rows.as_mut() {
            out_rows.sort_unstable();
        }
        out
    }

    /// Point read of `row`: the overlaid value if queued, the (copy-aware)
    /// stored value otherwise.
    fn value(&self, row: usize) -> u64 {
        assert!(row < self.num_rows, "row {row} out of bounds");
        if let Some(value) = self.overlay_value(row as u64) {
            return value;
        }
        let page = row / VALUES_PER_PAGE;
        let slot = row % VALUES_PER_PAGE;
        self.page_raw(page)[1 + slot]
    }
}

impl<B: Backend> std::fmt::Debug for ColumnEpoch<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ColumnEpoch")
            .field("num_rows", &self.num_rows)
            .field("num_views", &self.views.len())
            .field("overlaid_rows", &self.overlay.len())
            .field("frozen_pages", &self.copies.len())
            .finish()
    }
}

/// One published epoch of the whole table: a consistent multi-column
/// snapshot readers pin with a single [`TableHandle::pin`].
pub struct TableEpoch<B: Backend> {
    columns: Vec<Arc<ColumnEpoch<B>>>,
    generation: u64,
}

impl<B: Backend> TableEpoch<B> {
    /// The table generation this epoch was published as.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }
}

impl<B: Backend> std::fmt::Debug for TableEpoch<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableEpoch")
            .field("generation", &self.generation)
            .field("columns", &self.columns)
            .finish()
    }
}

/// Aggregate answer of a range query: qualifying-row count and value
/// checksum.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RangeAnswer {
    /// Number of qualifying rows.
    pub count: u64,
    /// Sum of the qualifying values (the result checksum).
    pub sum: u128,
}

/// Answer of a planned conjunctive query, summarized order-independently.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConjunctiveAnswer {
    /// Number of rows satisfying every predicate.
    pub count: u64,
    /// Order-independent checksum over the surviving row ids.
    pub rows_checksum: u64,
}

/// Order-independent checksum over row ids (commutative wrapping sum of a
/// per-row mix).
fn checksum_rows(rows: &[u64]) -> u64 {
    rows.iter().fold(0u64, |acc, &row| {
        acc.wrapping_add(splitmix64(row.wrapping_add(1)))
    })
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A cloneable, sendable handle readers use to pin snapshots of a
/// [`ServeTable`]. Obtained from [`ServeTable::handle`]; cloning
/// registers an independent reader slot, so each reader thread should
/// carry its own handle.
pub struct TableHandle<B: Backend> {
    reader: Reader<TableEpoch<B>>,
    parallelism: Parallelism,
}

impl<B: Backend> TableHandle<B> {
    /// Pins the latest published epoch: two atomic stores, no lock, never
    /// blocked by the maintenance thread. The snapshot stays valid (and
    /// its epoch unreclaimed) until dropped, and inherits the handle's
    /// [`Parallelism`] knob.
    pub fn pin(&self) -> Snapshot<B> {
        Snapshot {
            pinned: self.reader.pin(),
            parallelism: self.parallelism,
        }
    }

    /// Sets the intra-query fork-join parallelism of snapshots pinned
    /// through this handle. Defaults to [`Parallelism::Sequential`];
    /// answers are bit-identical for every setting (see the
    /// [module docs](self)).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }
}

impl<B: Backend> Clone for TableHandle<B> {
    fn clone(&self) -> Self {
        Self {
            reader: self.reader.clone(),
            parallelism: self.parallelism,
        }
    }
}

impl<B: Backend> std::fmt::Debug for TableHandle<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableHandle").finish_non_exhaustive()
    }
}

/// An epoch-consistent read snapshot of the whole table.
///
/// All queries on one snapshot observe the same epoch; pinning again
/// ([`TableHandle::pin`]) observes later commits.
pub struct Snapshot<B: Backend> {
    pinned: Pinned<TableEpoch<B>>,
    parallelism: Parallelism,
}

impl<B: Backend> Snapshot<B> {
    /// The table generation of the pinned epoch.
    pub fn generation(&self) -> u64 {
        self.pinned.generation()
    }

    /// Sets the intra-query fork-join parallelism of this snapshot's
    /// queries (overriding what the handle set at pin time).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Number of columns in the pinned epoch.
    pub fn num_columns(&self) -> usize {
        self.pinned.columns.len()
    }

    /// Number of rows of column `col`.
    pub fn num_rows(&self, col: usize) -> usize {
        self.column(col).num_rows
    }

    fn column(&self, col: usize) -> &ColumnEpoch<B> {
        &self.pinned.columns[col]
    }

    /// Point read of `(col, row)` — overlay-aware and copy-aware.
    pub fn value(&self, col: usize, row: usize) -> u64 {
        self.column(col).value(row)
    }

    /// Routed range scan of column `col`: count and value checksum of the
    /// rows whose value falls into `range`.
    pub fn query_range(&self, col: usize, range: &ValueRange) -> RangeAnswer {
        let pool = ThreadPool::new(self.parallelism);
        let out = self.column(col).scan(range, ScanMode::Aggregate, &pool);
        RangeAnswer {
            count: out.result.count,
            sum: out.result.sum,
        }
    }

    /// Routed range scan collecting the qualifying row ids, ascending.
    pub fn collect_rows(&self, col: usize, range: &ValueRange) -> Vec<u64> {
        let pool = ThreadPool::new(self.parallelism);
        self.column(col)
            .scan(range, ScanMode::CollectRows, &pool)
            .rows
            .unwrap_or_default()
    }

    /// Planned conjunctive query over `(column, range)` predicates: the
    /// predicates are ordered by estimated cardinality (ascending, input
    /// order breaking ties), the cheapest drives a collecting scan and the
    /// rest run as semi-join probes over the survivors.
    ///
    /// # Panics
    /// Panics if `predicates` is empty or names an out-of-range column.
    pub fn query_conjunctive(&self, predicates: &[(usize, ValueRange)]) -> ConjunctiveAnswer {
        assert!(!predicates.is_empty(), "conjunctive query needs predicates");
        let pool = ThreadPool::new(self.parallelism);
        let mut order: Vec<usize> = (0..predicates.len()).collect();
        order.sort_by_key(|&i| {
            let (col, range) = &predicates[i];
            (self.column(*col).stats.estimate(range).est_rows, i)
        });
        let (col, range) = &predicates[order[0]];
        let mut survivors = self
            .column(*col)
            .scan(range, ScanMode::CollectRows, &pool)
            .rows
            .unwrap_or_default();
        for &i in &order[1..] {
            if survivors.is_empty() {
                break;
            }
            let (col, range) = &predicates[i];
            survivors = self
                .column(*col)
                .probe(range, &survivors, ScanMode::CollectRows, &pool)
                .rows
                .unwrap_or_default();
        }
        ConjunctiveAnswer {
            count: survivors.len() as u64,
            rows_checksum: checksum_rows(&survivors),
        }
    }
}

impl<B: Backend> Clone for Snapshot<B> {
    fn clone(&self) -> Self {
        Self {
            pinned: self.pinned.clone(),
            parallelism: self.parallelism,
        }
    }
}

impl<B: Backend> std::fmt::Debug for Snapshot<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot")
            .field("generation", &self.generation())
            .finish()
    }
}

/// Hashes a row to its ingest lane: page-group sharding. All writes to
/// one page travel one lane, so per-row write order is preserved end to
/// end (a writer thread sends a given row's writes through one FIFO
/// channel and the maintainer drains lanes in receive order).
pub fn writer_shard_of(row: usize, shards: usize) -> usize {
    (row / VALUES_PER_PAGE) % shards.max(1)
}

/// One acknowledged write travelling an ingest lane.
#[derive(Clone, Copy, Debug)]
struct IngestWrite {
    col: usize,
    row: usize,
    value: u64,
}

/// A cloneable multi-producer write handle onto a [`ServeTable`]
/// ([`ServeTable::writer`]): the sharded ingest front door.
///
/// Any number of threads may hold clones and call [`TableWriter::write`]
/// concurrently — each write is routed to one of the table's
/// `writer_shards` MPSC lanes by its row's page group
/// ([`writer_shard_of`]) and staged by the maintenance thread at the next
/// [`ServeTable::tick`]. Writes from one writer thread to one row apply
/// in send order (per-writer FIFO); writes to different rows from
/// different writers may interleave arbitrarily, which is
/// answer-preserving because the overlay is last-write-wins *per row*.
///
/// Callers that need a quiescent table ([`ServeTable::quiesce`]) should
/// stop (join) their writer threads first — a writer racing the drain
/// can always re-stage new work.
#[derive(Clone, Debug)]
pub struct TableWriter {
    senders: Vec<LaneSender>,
}

impl TableWriter {
    /// Number of ingest lanes (the table's `writer_shards`).
    pub fn shards(&self) -> usize {
        self.senders.len()
    }

    /// Sends an acknowledged write of `value` into `(col, row)` through
    /// the row's lane. On an unbounded lane (the default) this never
    /// blocks; on a bounded lane (`AlignChunking::writer_lane_capacity`)
    /// it blocks while the lane is full, until the maintenance thread
    /// drains it — backpressure as real flow control.
    ///
    /// # Panics
    /// Panics if the [`ServeTable`] was dropped while this writer is
    /// still active.
    pub fn write(&self, col: usize, row: usize, value: u64) {
        let lane = writer_shard_of(row, self.senders.len());
        self.senders[lane]
            .send(IngestWrite { col, row, value })
            .expect("serve table dropped while writers are active");
    }

    /// Non-blocking variant of [`TableWriter::write`]: returns `false` if
    /// the row's (bounded) lane is full, in which case the write was
    /// *not* staged and the caller must retry. Unbounded lanes always
    /// accept.
    ///
    /// # Panics
    /// Panics if the [`ServeTable`] was dropped while this writer is
    /// still active.
    pub fn try_write(&self, col: usize, row: usize, value: u64) -> bool {
        let lane = writer_shard_of(row, self.senders.len());
        match self.senders[lane].try_send(IngestWrite { col, row, value }) {
            Ok(()) => true,
            Err(mpsc::TrySendError::Full(_)) => false,
            Err(mpsc::TrySendError::Disconnected(_)) => {
                panic!("serve table dropped while writers are active")
            }
        }
    }
}

/// The sending half of one ingest lane: unbounded (writers never stall)
/// or bounded by `AlignChunking::writer_lane_capacity` (writers block on
/// a full lane until the maintainer drains it).
#[derive(Clone, Debug)]
enum LaneSender {
    Unbounded(mpsc::Sender<IngestWrite>),
    Bounded(mpsc::SyncSender<IngestWrite>),
}

impl LaneSender {
    fn send(&self, write: IngestWrite) -> Result<(), mpsc::SendError<IngestWrite>> {
        match self {
            LaneSender::Unbounded(tx) => tx.send(write),
            LaneSender::Bounded(tx) => tx.send(write),
        }
    }

    fn try_send(&self, write: IngestWrite) -> Result<(), mpsc::TrySendError<IngestWrite>> {
        match self {
            LaneSender::Unbounded(tx) => tx
                .send(write)
                .map_err(|mpsc::SendError(w)| mpsc::TrySendError::Disconnected(w)),
            LaneSender::Bounded(tx) => tx.try_send(write),
        }
    }
}

/// The maintainer-owned mutable state of one column.
struct ColumnState<B: Backend> {
    column: Column<B>,
    views: ViewSet<B>,
    /// Frozen per-view metadata mirroring `views`, shared into epochs.
    view_metas: Vec<Arc<ViewMeta>>,
    overlay: WriteOverlay,
    stats: ZoneStats,
    full_view: Arc<B::View>,
    /// Frozen copies of every page holding an overlaid row, mirrored into
    /// each published epoch (see the copies field of [`ColumnEpoch`]).
    copies: HashMap<usize, Arc<Vec<u64>>>,
    /// In-flight background planning of the current round.
    pending: Option<PendingChunkedAlignment>,
    /// Planned chunks of the current round awaiting explosion into the
    /// delta queue, in publication order.
    ready: VecDeque<AlignmentPlan>,
    /// The delta queue: per-view work items of the chunk(s) currently
    /// draining, hottest views first within each chunk. Each item is a
    /// single-view [`AlignmentPlan`] published on its own.
    items: VecDeque<AlignmentPlan>,
    /// `true` between a fold and the retirement of its rows.
    round_active: bool,
    /// Cumulative alignment activity (see [`AlignActivity`]).
    activity: AlignActivity,
    /// Publish latency samples (µs per drained delta item), drained by
    /// [`ServeTable::drain_publish_micros`].
    publish_micros: Vec<u64>,
    /// Cached epoch of the column, invalidated on any change.
    cached: Option<Arc<ColumnEpoch<B>>>,
    /// Distinct overlaid rows per ingest shard (indexed by
    /// [`writer_shard_of`]) — sums to `overlay.len()`. Drives per-shard
    /// backpressure in [`ServeTable::maybe_fold`].
    shard_overlaid: Vec<usize>,
    /// Consecutive fully-idle ticks (no round in flight, empty overlay),
    /// for the idle-tick band re-tightening pass.
    idle_ticks: usize,
    /// `true` if a write widened a zone band since the last
    /// [`ZoneStats`] rebuild.
    stats_widened: bool,
}

impl<B: Backend> ColumnState<B> {
    fn mark_dirty(&mut self) {
        self.cached = None;
    }

    fn is_idle(&self) -> bool {
        self.pending.is_none()
            && self.ready.is_empty()
            && self.items.is_empty()
            && !self.round_active
    }

    /// Freezes the current page content of `row`'s page into the copy set
    /// (first write to the page since the last retirement wins — later
    /// folds must not be visible through an already-published epoch).
    fn freeze_page_of(&mut self, row: usize) {
        let page = row / VALUES_PER_PAGE;
        self.copies
            .entry(page)
            .or_insert_with(|| Arc::new(copy_values_chunked(self.column.page_ref(page).raw())));
    }

    /// Recomputes the frozen metadata of the view at `view_idx` from its
    /// live mapping table.
    fn refresh_view_meta(&mut self, view_idx: usize) -> Result<(), VmemError> {
        let view = self
            .views
            .partial_view(view_idx)
            .expect("plan references a live view");
        let table = self
            .column
            .backend()
            .mapping_table(self.column.store(), view.buffer())?;
        let mapped = view.num_pages();
        let phys: Vec<usize> = (0..mapped)
            .map(|slot| {
                table
                    .phys_for_slot(slot)
                    .expect("dense views map every slot of the mapped prefix")
            })
            .collect();
        self.view_metas[view_idx] = Arc::new(ViewMeta {
            range: *view.range(),
            phys,
        });
        Ok(())
    }

    /// The column's frozen epoch, rebuilt only if something changed since
    /// the last publish.
    fn epoch(&mut self) -> Arc<ColumnEpoch<B>> {
        if let Some(cached) = &self.cached {
            return Arc::clone(cached);
        }
        let rows: Vec<u64> = self.overlay.rows().clone();
        let overlay: Vec<(u64, u64)> = rows
            .iter()
            .map(|&row| (row, self.overlay.value(row).expect("row is overlaid")))
            .collect();
        let epoch = Arc::new(ColumnEpoch {
            full_view: Arc::clone(&self.full_view),
            num_rows: self.column.num_rows(),
            num_pages: self.column.num_pages(),
            views: self.view_metas.clone(),
            overlay: Arc::new(overlay),
            masks: Arc::new(ExclusionMasks::from_rows(rows)),
            copies: Arc::new(self.copies.clone()),
            stats: Arc::new(self.stats.clone()),
        });
        self.cached = Some(Arc::clone(&epoch));
        epoch
    }
}

/// Cumulative incremental-alignment activity of a column (or, summed, of a
/// whole [`ServeTable`]): how many views were actually replanned versus how
/// many were live across all folded rounds. `planned_views /
/// candidate_views ≪ 1` is the payoff of the dependency-driven delta path —
/// with full replanning the two are always equal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AlignActivity {
    /// Number of alignment rounds folded.
    pub rounds: u64,
    /// Views snapshotted and replanned across all rounds.
    pub planned_views: u64,
    /// Live views at fold time, summed across all rounds (the work a full
    /// replan would have done).
    pub candidate_views: u64,
    /// Delta work items published (single-view epoch publishes).
    pub published_items: u64,
}

impl AlignActivity {
    fn absorb(&mut self, other: &AlignActivity) {
        self.rounds += other.rounds;
        self.planned_views += other.planned_views;
        self.candidate_views += other.candidate_views;
        self.published_items += other.published_items;
    }
}

/// Durability knobs of a serving table ([`ServeTable::with_durability`]).
///
/// A durable table appends every state-changing operation — column
/// loads, view installs, acknowledged write batches — to a write-ahead
/// journal ([`crate::wal`]) *before* acknowledging it, and seals every
/// published epoch with a [`WalRecord::Seal`]. [`ServeTable::recover`]
/// rebuilds the table from the journal alone: the physical store is
/// reconstructed from the sealed records, so store flushing is an
/// optimization, never a correctness requirement.
#[derive(Clone, Debug)]
pub struct DurabilityConfig {
    /// Path of the journal file.
    pub journal_path: PathBuf,
    /// How many epoch seals may accumulate before the journal is
    /// fsynced: `1` (the default) syncs every commit, `n > 1` groups `n`
    /// commits per sync, `0` syncs only at [`ServeTable::quiesce`].
    pub fsync_every_chunks: usize,
    /// Deterministic fault injection for crash tests ([`FaultPlan`]).
    pub fault: Option<FaultPlan>,
}

impl DurabilityConfig {
    /// Durability at `journal_path`: an fsync per commit, no fault.
    pub fn new(journal_path: impl Into<PathBuf>) -> Self {
        Self {
            journal_path: journal_path.into(),
            fsync_every_chunks: 1,
            fault: None,
        }
    }

    /// Builder-style setter for the commits-per-fsync group size.
    pub fn with_fsync_every_chunks(mut self, fsync_every_chunks: usize) -> Self {
        self.fsync_every_chunks = fsync_every_chunks;
        self
    }

    /// Builder-style setter for the injected fault plan.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// What [`ServeTable::recover`] found in the journal.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryInfo {
    /// The last sealed epoch (`0` if the journal sealed nothing).
    pub sealed_epoch: u64,
    /// Sealed records replayed (column loads, view installs, batches and
    /// seals).
    pub records_replayed: usize,
    /// Acknowledged write batches re-applied.
    pub batches_applied: usize,
    /// Bytes of unsealed tail discarded past the last seal.
    pub discarded_bytes: u64,
}

/// The journal state of a durable table.
struct DurableState {
    journal: Journal,
    config: DurabilityConfig,
    /// Seals appended since the last fsync (drives `fsync_every_chunks`).
    seals_since_sync: usize,
}

/// A table served concurrently: owned (and mutated) by one maintenance
/// thread, read by any number of [`TableHandle`] holders.
///
/// See the [module docs](self) for the epoch protocol. The serving
/// behaviour is driven by three methods:
///
/// * [`ServeTable::write`] / [`ServeTable::write_batch`] stage writes,
/// * [`ServeTable::tick`] publishes staged acknowledgements, advances
///   alignment rounds one chunk at a time and folds the queue when the
///   group-commit threshold and the grace condition allow,
/// * [`ServeTable::quiesce`] ticks until every queued write is folded,
///   aligned and retired (it waits for readers to unpin old epochs).
pub struct ServeTable<B: Backend> {
    backend: B,
    config: AdaptiveConfig,
    columns: Vec<ColumnState<B>>,
    cell: Arc<EpochCell<TableEpoch<B>>>,
    /// Every published epoch still possibly alive, oldest first; the last
    /// entry is the current epoch.
    history: Vec<Arc<TableEpoch<B>>>,
    generation: u64,
    /// `true` while un-published changes (staged writes, applied chunks,
    /// retirements) exist.
    staged: bool,
    /// Receiving ends of the ingest lanes, drained at each tick.
    lanes: Vec<mpsc::Receiver<IngestWrite>>,
    /// Sending ends, cloned into every [`TableWriter`].
    lane_senders: Vec<LaneSender>,
    /// Write-ahead journal of a durable table (`None` on an in-memory
    /// one).
    durable: Option<DurableState>,
}

impl<B: Backend> ServeTable<B> {
    /// Creates an empty serving table on `backend`, with
    /// `config.chunking.writer_shards` ingest lanes.
    pub fn new(backend: B, config: AdaptiveConfig) -> Self {
        let cell = Arc::new(EpochCell::new(TableEpoch {
            columns: Vec::new(),
            generation: 0,
        }));
        let history = vec![cell.latest()];
        let shards = config.chunking.writer_shards.max(1);
        let capacity = config.chunking.writer_lane_capacity;
        let mut lanes = Vec::with_capacity(shards);
        let mut lane_senders = Vec::with_capacity(shards);
        for _ in 0..shards {
            if capacity > 0 {
                let (tx, rx) = mpsc::sync_channel(capacity);
                lane_senders.push(LaneSender::Bounded(tx));
                lanes.push(rx);
            } else {
                let (tx, rx) = mpsc::channel();
                lane_senders.push(LaneSender::Unbounded(tx));
                lanes.push(rx);
            }
        }
        Self {
            backend,
            config,
            columns: Vec::new(),
            cell,
            history,
            generation: 0,
            staged: false,
            lanes,
            lane_senders,
            durable: None,
        }
    }

    /// Creates an empty *durable* serving table: every state-changing
    /// operation is appended to the write-ahead journal at
    /// `durability.journal_path` before it is acknowledged, and every
    /// published epoch is sealed. Any existing file at the path is
    /// truncated — use [`ServeTable::recover`] to restore one.
    pub fn with_durability(
        backend: B,
        config: AdaptiveConfig,
        durability: DurabilityConfig,
    ) -> Result<Self, VmemError> {
        let journal = Journal::create(durability.journal_path.clone(), durability.fault)?;
        let mut table = Self::new(backend, config);
        table.durable = Some(DurableState {
            journal,
            config: durability,
            seals_since_sync: 0,
        });
        Ok(table)
    }

    /// Rebuilds a durable serving table from its journal after a crash.
    ///
    /// Replays exactly the records up to the last valid seal — column
    /// loads, view installs and acknowledged write batches; everything
    /// past that seal (the unsealed tail a crash may leave) is discarded.
    /// The physical store is rebuilt from the journal, never read back:
    /// the journal alone is the source of truth. The journal is then
    /// compacted to a checkpoint, reopened for appends, and the table
    /// serves again at an epoch no older than the last sealed one.
    pub fn recover(
        backend: B,
        config: AdaptiveConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryInfo), VmemError> {
        let outcome = wal::replay(&durability.journal_path)?;
        let mut columns: Vec<Vec<u64>> = Vec::new();
        let mut views: Vec<(usize, ValueRange)> = Vec::new();
        let mut batches_applied = 0usize;
        for record in &outcome.sealed_records {
            match record {
                WalRecord::AddColumn { col, values } => {
                    assert_eq!(
                        *col as usize,
                        columns.len(),
                        "journal records columns in append order"
                    );
                    columns.push(values.clone());
                }
                WalRecord::InstallView { col, min, max } => {
                    views.push((*col as usize, ValueRange::new(*min, *max)));
                }
                WalRecord::Batch { col, writes } => {
                    let column = &mut columns[*col as usize];
                    for &(row, value) in writes {
                        column[row as usize] = value;
                    }
                    batches_applied += 1;
                }
                WalRecord::Seal { .. } => {}
            }
        }
        let info = RecoveryInfo {
            sealed_epoch: outcome.sealed_epoch.unwrap_or(0),
            records_replayed: outcome.sealed_records.len(),
            batches_applied,
            discarded_bytes: outcome.discarded_bytes(),
        };
        // Rebuild in memory first (journal-free), then attach a compacted
        // journal: recovery must not append replayed operations back onto
        // the tail it just replayed.
        let mut table = Self::new(backend, config);
        for values in &columns {
            table.add_column(values)?;
        }
        for (col, range) in views {
            table.install_view(col, range)?;
        }
        // Epoch numbering continues across the crash.
        table.generation = table.generation.max(info.sealed_epoch);
        let records = table.checkpoint_records();
        wal::rewrite(&durability.journal_path, &records)?;
        let journal = Journal::open_append(durability.journal_path.clone(), durability.fault)?;
        table.durable = Some(DurableState {
            journal,
            config: durability,
            seals_since_sync: 0,
        });
        Ok((table, info))
    }

    /// Adds a column holding `values` and publishes the widened epoch.
    /// Returns the column's index. On a durable table the column load is
    /// journaled before the store is built.
    pub fn add_column(&mut self, values: &[u64]) -> Result<usize, VmemError> {
        if self.durable.is_some() {
            let record = WalRecord::AddColumn {
                col: self.columns.len() as u32,
                values: values.to_vec(),
            };
            self.journal_append(&record)?;
        }
        let column = Column::from_values(self.backend.clone(), values)?;
        let full_view = Arc::new(self.backend.create_full_view(column.store())?);
        let stats = ZoneStats::build(&column);
        let state = ColumnState {
            views: ViewSet::new(self.config.max_views),
            view_metas: Vec::new(),
            overlay: WriteOverlay::new(),
            stats,
            full_view,
            copies: HashMap::new(),
            pending: None,
            ready: VecDeque::new(),
            items: VecDeque::new(),
            round_active: false,
            activity: AlignActivity::default(),
            publish_micros: Vec::new(),
            cached: None,
            shard_overlaid: vec![0; self.lanes.len()],
            idle_ticks: 0,
            stats_widened: false,
            column,
        };
        self.columns.push(state);
        self.staged = true;
        self.commit()?;
        Ok(self.columns.len() - 1)
    }

    /// Builds and installs a partial view covering `range` on column
    /// `col`, then publishes the epoch carrying it.
    ///
    /// Views are installed during setup: the call is rejected while an
    /// alignment round is in flight or writes are queued, because the
    /// in-flight round's plan predates the view and would leave it
    /// misaligned.
    pub fn install_view(&mut self, col: usize, range: ValueRange) -> Result<(), VmemError> {
        {
            let state = &self.columns[col];
            if !state.is_idle() || !state.overlay.is_empty() {
                return Err(VmemError::Unsupported(
                    "install_view requires an idle column (no round in flight, no queued writes)",
                ));
            }
        }
        if self.durable.is_some() {
            self.journal_append(&WalRecord::InstallView {
                col: col as u32,
                min: range.low(),
                max: range.high(),
            })?;
        }
        let state = &mut self.columns[col];
        let (buffer, _) = build_view_for_range(&state.column, &range, &self.config.creation)?;
        state.views.insert_unchecked(range, buffer);
        state.view_metas.push(Arc::new(ViewMeta {
            range,
            phys: Vec::new(),
        }));
        let view_idx = state.view_metas.len() - 1;
        state.refresh_view_meta(view_idx)?;
        state.mark_dirty();
        self.staged = true;
        self.commit()?;
        Ok(())
    }

    /// A reader handle onto this table. Clone it (or call this again) for
    /// every reader thread. Queries run sequentially by default —
    /// [`TableHandle::with_parallelism`] turns on intra-query fork-join.
    pub fn handle(&self) -> TableHandle<B> {
        TableHandle {
            reader: self.cell.reader(),
            parallelism: Parallelism::Sequential,
        }
    }

    /// A sharded multi-producer write handle (the ingest front door).
    /// Clone it for every writer thread; see [`TableWriter`].
    pub fn writer(&self) -> TableWriter {
        TableWriter {
            senders: self.lane_senders.clone(),
        }
    }

    /// Number of ingest lanes of the sharded front door
    /// (`AlignChunking::writer_shards`).
    pub fn writer_shards(&self) -> usize {
        self.lanes.len()
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Number of rows of column `col`.
    pub fn num_rows(&self, col: usize) -> usize {
        self.columns[col].column.num_rows()
    }

    /// The current (published) table generation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Number of published epochs not yet reclaimed (including the
    /// current one).
    pub fn live_epochs(&mut self) -> usize {
        self.cell.try_reclaim();
        self.prune_history();
        self.history.len()
    }

    /// Number of writes queued on column `col` awaiting the next fold.
    pub fn queued_writes(&self, col: usize) -> usize {
        self.columns[col].overlay.queued_writes()
    }

    /// The live zone statistics of column `col`. Bands are widened
    /// eagerly at write acknowledgement (before the fold), so incremental
    /// alignment planning never consults a stale band.
    pub fn zone_stats(&self, col: usize) -> &ZoneStats {
        &self.columns[col].stats
    }

    /// Returns `true` while column `col` has an alignment round in
    /// flight.
    pub fn round_in_flight(&self, col: usize) -> bool {
        !self.columns[col].is_idle()
    }

    /// Stages a write of `value` into `(col, row)`. The acknowledgement
    /// becomes visible to *new* pins at the next [`ServeTable::tick`];
    /// the writer itself never blocks.
    ///
    /// # Panics
    /// On a durable table, panics if the journal append fails — use
    /// [`ServeTable::try_write`] to handle the error.
    pub fn write(&mut self, col: usize, row: usize, value: u64) {
        self.try_write(col, row, value)
            .expect("journal append failed (use try_write on durable tables)");
    }

    /// Stages a batch of `(row, value)` writes into column `col`.
    ///
    /// # Panics
    /// On a durable table, panics if the journal append fails — use
    /// [`ServeTable::try_write_batch`] to handle the error.
    pub fn write_batch(&mut self, col: usize, writes: &[(usize, u64)]) {
        self.try_write_batch(col, writes)
            .expect("journal append failed (use try_write_batch on durable tables)");
    }

    /// Fallible single write: [`ServeTable::try_write_batch`] of one
    /// write.
    pub fn try_write(&mut self, col: usize, row: usize, value: u64) -> Result<(), VmemError> {
        self.try_write_batch(col, &[(row, value)])
    }

    /// Fallible batch write. On a durable table the batch is appended to
    /// the journal as one [`WalRecord::Batch`] *before* any of it is
    /// staged (write-ahead): an `Err` means nothing was acknowledged and
    /// the serving state is unchanged, so recovery and the live table
    /// agree on exactly which writes exist.
    pub fn try_write_batch(
        &mut self,
        col: usize,
        writes: &[(usize, u64)],
    ) -> Result<(), VmemError> {
        if writes.is_empty() {
            return Ok(());
        }
        let num_rows = self.columns[col].column.num_rows();
        for &(row, _) in writes {
            assert!(row < num_rows, "row {row} out of bounds");
        }
        if self.durable.is_some() {
            let record = WalRecord::Batch {
                col: col as u32,
                writes: writes.iter().map(|&(r, v)| (r as u64, v)).collect(),
            };
            self.journal_append(&record)?;
        }
        for &(row, value) in writes {
            self.stage_write(col, row, value);
        }
        Ok(())
    }

    /// The journal-free staging path shared by every write front door.
    fn stage_write(&mut self, col: usize, row: usize, value: u64) {
        let shards = self.lanes.len();
        let state = &mut self.columns[col];
        debug_assert!(row < state.column.num_rows(), "row {row} out of bounds");
        state.stats.note_write(row, value);
        state.stats_widened = true;
        state.freeze_page_of(row);
        if state.overlay.push(row, value) {
            state.shard_overlaid[writer_shard_of(row, shards)] += 1;
        }
        state.mark_dirty();
        self.staged = true;
    }

    /// One maintenance step. Publishes staged acknowledgements, advances
    /// every column's alignment round by at most one chunk, retires
    /// completed rounds and folds queued writes into new rounds when the
    /// group-commit threshold is reached and the grace condition holds.
    /// Never blocks on readers or on the background planner.
    pub fn tick(&mut self) -> Result<(), VmemError> {
        self.tick_inner(false)
    }

    fn tick_inner(&mut self, force_fold: bool) -> Result<(), VmemError> {
        // Drain the ingest lanes first: writes sent through TableWriters
        // stage exactly like direct writes and are published by the
        // commit below — the tick boundary is the acknowledgement point
        // for both front doors.
        self.drain_ingest()?;
        self.cell.try_reclaim();
        // Commit-before-fold invariant: every staged acknowledgement is
        // published (with its masks and page copies) before any fold may
        // write the store.
        self.commit()?;
        for idx in 0..self.columns.len() {
            self.advance_column(idx)?;
        }
        for idx in 0..self.columns.len() {
            self.maybe_retighten(idx);
        }
        self.commit()?;
        if self.grace_elapsed() {
            for idx in 0..self.columns.len() {
                self.maybe_fold(idx, force_fold)?;
            }
        }
        Ok(())
    }

    /// Drains every ingest lane into the staging path
    /// ([`Self::stage_write`]). Lanes drain fully and in receive order,
    /// so writes from one writer thread apply FIFO (a row always hashes
    /// to the same lane). On a durable table the drained writes are
    /// journaled first (one batch record per column, in drain order), so
    /// lane-ingested writes get the same write-ahead guarantee as direct
    /// ones.
    fn drain_ingest(&mut self) -> Result<(), VmemError> {
        let mut drained: Vec<IngestWrite> = Vec::new();
        for lane in 0..self.lanes.len() {
            while let Ok(write) = self.lanes[lane].try_recv() {
                drained.push(write);
            }
        }
        if drained.is_empty() {
            return Ok(());
        }
        if self.durable.is_some() {
            let mut per_col: Vec<Vec<(u64, u64)>> = vec![Vec::new(); self.columns.len()];
            for write in &drained {
                per_col[write.col].push((write.row as u64, write.value));
            }
            for (col, writes) in per_col.into_iter().enumerate() {
                if writes.is_empty() {
                    continue;
                }
                self.journal_append(&WalRecord::Batch {
                    col: col as u32,
                    writes,
                })?;
            }
        }
        for write in drained {
            self.stage_write(write.col, write.row, write.value);
        }
        Ok(())
    }

    /// Idle-tick band re-tightening (the counterpart of eager widening):
    /// after `AlignChunking::retighten_idle_ticks` consecutive fully-idle
    /// ticks on a column whose bands widened since the last rebuild, the
    /// [`ZoneStats`] are rebuilt from the live column. The overlay is
    /// empty and no round is in flight at that point, so the rebuilt
    /// bands exactly cover the stored data; stats only drive predicate
    /// ordering and delta pruning, so answers are unaffected.
    fn maybe_retighten(&mut self, idx: usize) {
        let ticks = self.config.chunking.retighten_idle_ticks;
        if ticks == 0 {
            return;
        }
        let state = &mut self.columns[idx];
        if !(state.is_idle() && state.overlay.is_empty()) {
            state.idle_ticks = 0;
            return;
        }
        state.idle_ticks += 1;
        if state.stats_widened && state.idle_ticks >= ticks {
            state.stats = ZoneStats::build(&state.column);
            state.stats_widened = false;
            state.idle_ticks = 0;
            state.mark_dirty();
            self.staged = true;
        }
    }

    /// Ticks until every queued write has been folded, aligned and
    /// retired, then publishes the final epoch. Waits (yielding) for
    /// readers to unpin superseded epochs, since folds require the grace
    /// condition — a reader that never drops its pin blocks quiescence.
    pub fn quiesce(&mut self) -> Result<(), VmemError> {
        loop {
            self.tick_inner(true)?;
            let drained = !self.staged
                && self
                    .columns
                    .iter()
                    .all(|c| c.is_idle() && c.overlay.is_empty());
            if drained {
                break;
            }
            std::thread::yield_now();
        }
        // A durable table seals its quiescent state and compacts the
        // journal down to a checkpoint.
        self.compact_journal()
    }

    /// Publishes the staged state as a new epoch, if anything changed. On
    /// a durable table the epoch is sealed in the journal, and the
    /// journal is fsynced per `DurabilityConfig::fsync_every_chunks` —
    /// recovery replays exactly up to the last seal that reached disk.
    fn commit(&mut self) -> Result<(), VmemError> {
        if !self.staged {
            return Ok(());
        }
        self.generation += 1;
        let columns: Vec<Arc<ColumnEpoch<B>>> =
            self.columns.iter_mut().map(|c| c.epoch()).collect();
        let epoch = self.cell.publish(TableEpoch {
            columns,
            generation: self.generation,
        });
        self.history.push(epoch);
        self.staged = false;
        if let Some(durable) = self.durable.as_mut() {
            durable.journal.append(&WalRecord::Seal {
                epoch: self.generation,
            })?;
            durable.seals_since_sync += 1;
            let every = durable.config.fsync_every_chunks;
            if every > 0 && durable.seals_since_sync >= every {
                durable.journal.sync()?;
                durable.seals_since_sync = 0;
            }
        }
        Ok(())
    }

    /// Appends `record` to the journal of a durable table (no-op on an
    /// in-memory one).
    fn journal_append(&mut self, record: &WalRecord) -> Result<(), VmemError> {
        if let Some(durable) = self.durable.as_mut() {
            durable.journal.append(record)?;
        }
        Ok(())
    }

    /// A checkpoint equivalent of the current (quiescent) table state:
    /// column loads, view installs and one seal of the current
    /// generation. Replaying exactly these records rebuilds the table.
    fn checkpoint_records(&self) -> Vec<WalRecord> {
        let mut records = Vec::new();
        for (idx, state) in self.columns.iter().enumerate() {
            debug_assert!(
                state.overlay.is_empty(),
                "checkpoint requires folded overlays"
            );
            records.push(WalRecord::AddColumn {
                col: idx as u32,
                values: state.column.to_vec(),
            });
        }
        for (idx, state) in self.columns.iter().enumerate() {
            for meta in &state.view_metas {
                records.push(WalRecord::InstallView {
                    col: idx as u32,
                    min: meta.range.low(),
                    max: meta.range.high(),
                });
            }
        }
        records.push(WalRecord::Seal {
            epoch: self.generation,
        });
        records
    }

    /// Compacts the journal of a durable, quiescent table down to a
    /// checkpoint (atomic rewrite, then reopen for appends). An unfired
    /// fault plan carries over with its op counter adjusted for the
    /// operations already performed.
    fn compact_journal(&mut self) -> Result<(), VmemError> {
        if self.durable.is_none() {
            return Ok(());
        }
        let records = self.checkpoint_records();
        let durable = self.durable.as_mut().expect("checked above");
        // Make everything appended so far durable first: with
        // `fsync_every_chunks == 0` this is the one sync point, and it is
        // where a `FailFsync` plan fires.
        durable.journal.sync()?;
        wal::rewrite(&durable.config.journal_path, &records)?;
        let fault = durable.journal.carryover_fault();
        durable.journal = Journal::open_append(durable.config.journal_path.clone(), fault)?;
        durable.seals_since_sync = 0;
        Ok(())
    }

    /// Drops history entries whose epochs are no longer referenced by any
    /// reader or retired cell node. The current epoch always stays.
    fn prune_history(&mut self) {
        if self.history.len() <= 1 {
            return;
        }
        let current = self.history.pop().expect("history is never empty");
        self.history.retain(|epoch| Arc::strong_count(epoch) > 1);
        self.history.push(current);
    }

    /// The grace condition of a fold: every epoch except the current one
    /// has been dropped by all readers. Older epochs may lack page copies
    /// for the rows a fold is about to write, so folding before they die
    /// would race their readers.
    fn grace_elapsed(&mut self) -> bool {
        self.cell.try_reclaim();
        self.prune_history();
        self.history.len() <= 1
    }

    /// Advances column `idx`'s alignment round: joins a finished
    /// background plan, explodes planned chunks into per-view delta work
    /// items and drains a bounded number of items from the delta queue
    /// (`AlignChunking::delta_items_per_tick`), retiring the round once
    /// the queue runs dry.
    ///
    /// Chunks explode strictly in publication order — a view's ops in
    /// chunk `k+1` assume chunk `k`'s layout — while the items *within*
    /// one chunk inherit the delta's hottest-first order from the
    /// snapshot. Publishing item-by-item is sound for the same reason
    /// chunk-by-chunk publishing is: rows folded by the round stay masked
    /// and overlaid until retirement, so an item publish only changes
    /// which pages one view scans, never an answer.
    fn advance_column(&mut self, idx: usize) -> Result<(), VmemError> {
        let budget = self.config.chunking.delta_items_per_tick;
        let state = &mut self.columns[idx];
        if state
            .pending
            .as_ref()
            .is_some_and(|pending| pending.is_finished())
        {
            let plan = state.pending.take().expect("pending checked above").join();
            state.ready.extend(plan.chunks);
        }
        let mut published = 0usize;
        loop {
            // Refill the delta queue from the next chunk(s); a chunk that
            // affects no view contributes no items and is skipped whole.
            while state.items.is_empty() {
                let Some(chunk) = state.ready.pop_front() else {
                    break;
                };
                state.items.extend(explode_chunk(chunk));
            }
            let Some(item) = state.items.pop_front() else {
                break;
            };
            let timer = Timer::start();
            apply_plan(&state.column, &mut state.views, &item)?;
            for view_plan in &item.views {
                state.refresh_view_meta(view_plan.view_idx)?;
            }
            state
                .publish_micros
                .push(timer.elapsed().as_micros() as u64);
            state.activity.published_items += 1;
            state.mark_dirty();
            self.staged = true;
            published += 1;
            // Budget 0 keeps the pre-delta-queue cadence: one whole chunk
            // per tick. Otherwise stop after `budget` items.
            if budget == 0 && state.items.is_empty() {
                break;
            }
            if budget != 0 && published >= budget {
                break;
            }
        }
        if state.round_active
            && state.pending.is_none()
            && state.ready.is_empty()
            && state.items.is_empty()
        {
            Self::retire_round(state);
            self.staged = true;
        }
        Ok(())
    }

    /// Completes a round: folded rows leave the overlay (their values are
    /// now served from the store through fully aligned views) and the
    /// copy set is re-frozen from the post-fold store for the rows that
    /// remain overlaid.
    fn retire_round(state: &mut ColumnState<B>) {
        state.overlay.retire_aligned();
        state.copies.clear();
        let shards = state.shard_overlaid.len();
        state.shard_overlaid.iter_mut().for_each(|c| *c = 0);
        let rows: Vec<u64> = state.overlay.rows().clone();
        for row in rows {
            state.freeze_page_of(row as usize);
            state.shard_overlaid[writer_shard_of(row as usize, shards)] += 1;
        }
        state.round_active = false;
        state.mark_dirty();
    }

    /// Folds column `idx`'s queued writes into a new alignment round if
    /// the column is idle and the group-commit threshold is met. The
    /// fold writes the physical store — the caller must have verified the
    /// grace condition and published all staged acknowledgements.
    fn maybe_fold(&mut self, idx: usize, force: bool) -> Result<(), VmemError> {
        debug_assert!(!self.staged, "fold requires committed acknowledgements");
        let chunking = self.config.chunking;
        let state = &mut self.columns[idx];
        if !state.is_idle() || state.overlay.queued_writes() == 0 {
            return Ok(());
        }
        // Backpressure is per ingest shard: any one lane filling its
        // share of the global budget forces a fold, so a skewed writer
        // cannot grow its shard's overlay unboundedly while the global
        // total stays below the old threshold. With one shard this is
        // exactly the former global `max_queued_writes` clause.
        let shards = state.shard_overlaid.len().max(1);
        let max_shard = state.shard_overlaid.iter().copied().max().unwrap_or(0);
        let threshold_met = force
            || state.overlay.len() >= chunking.group_commit_idle.max(1)
            || max_shard >= chunking.max_queued_writes.div_ceil(shards);
        if !threshold_met {
            return Ok(());
        }
        let folded = state.overlay.take_queued();
        let updates = state.column.write_batch(&folded);
        let live_views = state.views.num_partial_views() as u64;
        // Dependency-graph consultation: snapshot only the views whose
        // predicate ranges intersect the touched zones. Zone bands were
        // widened eagerly when each write was acknowledged
        // ([`ServeTable::write`]), so the delta can never miss an affected
        // view. The full-replan branch below stays as the bit-identical
        // reference twin.
        let snapshot = if chunking.incremental_align {
            let delta = compute_alignment_delta(&state.stats, &state.views, &updates);
            state.activity.planned_views += delta.num_affected() as u64;
            snapshot_alignment_delta(&state.column, &state.views, &updates, &delta)?
        } else {
            state.activity.planned_views += live_views;
            snapshot_alignment(&state.column, &state.views, &updates)?
        };
        state.activity.candidate_views += live_views;
        state.activity.rounds += 1;
        state.pending = Some(spawn_alignment_chunked(
            snapshot,
            self.config.parallelism,
            chunking.chunk_updates,
        ));
        state.round_active = true;
        Ok(())
    }

    /// Cumulative alignment activity summed over all columns: rounds
    /// folded, views replanned versus views a full replan would have
    /// touched, and delta items published.
    pub fn align_activity(&self) -> AlignActivity {
        let mut total = AlignActivity::default();
        for state in &self.columns {
            total.absorb(&state.activity);
        }
        total
    }

    /// Drains and returns the publish-latency samples (µs per delta work
    /// item) collected since the last call, across all columns.
    pub fn drain_publish_micros(&mut self) -> Vec<u64> {
        let mut all = Vec::new();
        for state in &mut self.columns {
            all.append(&mut state.publish_micros);
        }
        all
    }
}

/// Splits one planned chunk into per-view delta work items: single-view
/// [`AlignmentPlan`]s in the chunk's view order (hottest first on the
/// incremental path, where the snapshot inherited the delta's priority
/// order).
fn explode_chunk(chunk: AlignmentPlan) -> Vec<AlignmentPlan> {
    let AlignmentPlan {
        batch_size,
        deduped_size,
        parse_time,
        plan_time,
        views,
    } = chunk;
    views
        .into_iter()
        .map(|view| AlignmentPlan {
            batch_size,
            deduped_size,
            parse_time,
            plan_time,
            views: vec![view],
        })
        .collect()
}

impl<B: Backend> std::fmt::Debug for ServeTable<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeTable")
            .field("columns", &self.columns.len())
            .field("generation", &self.generation)
            .field("staged", &self.staged)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::{MmapBackend, SimBackend};

    /// Clustered data: page p holds values in [p*1000, p*1000 + 510].
    fn clustered_values(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    fn reference_answer(values: &[u64], range: &ValueRange) -> RangeAnswer {
        let mut answer = RangeAnswer::default();
        for &v in values {
            if range.contains(v) {
                answer.count += 1;
                answer.sum += v as u128;
            }
        }
        answer
    }

    fn serve_config() -> AdaptiveConfig {
        AdaptiveConfig::default().with_chunking(
            crate::config::AlignChunking::default()
                .with_chunk_updates(4)
                .with_group_commit_idle(0),
        )
    }

    #[test]
    fn snapshot_answers_match_reference_through_writes() {
        let mut table = ServeTable::new(SimBackend::new(), serve_config());
        let mut mirror = clustered_values(24);
        let col = table.add_column(&mirror).unwrap();
        table
            .install_view(col, ValueRange::new(5_000, 9_400))
            .unwrap();
        let handle = table.handle();
        let ranges = [
            ValueRange::new(5_000, 9_400),
            ValueRange::new(0, 2_000),
            ValueRange::new(900_000, 1_000_000),
        ];

        let writes: Vec<(usize, u64)> = (0..40)
            .map(|i| (i * 17 % mirror.len(), 900_000 + i as u64))
            .collect();
        for chunk in writes.chunks(7) {
            table.write_batch(col, chunk);
            for &(row, value) in chunk {
                mirror[row] = value;
            }
            table.tick().unwrap();
            let snap = handle.pin();
            for range in &ranges {
                assert_eq!(
                    snap.query_range(col, range),
                    reference_answer(&mirror, range),
                    "post-ack answers reflect every staged write"
                );
            }
            for &(row, value) in chunk {
                assert_eq!(snap.value(col, row), value);
            }
        }
        table.quiesce().unwrap();
        let snap = handle.pin();
        for range in &ranges {
            assert_eq!(
                snap.query_range(col, range),
                reference_answer(&mirror, range)
            );
        }
        // After quiescence nothing is overlaid: answers come from the
        // aligned views and store alone.
        assert_eq!(snap.column(col).overlaid_rows(), 0);
    }

    #[test]
    fn pinned_snapshot_is_immutable_across_commits() {
        let mut table = ServeTable::new(SimBackend::new(), serve_config());
        let values = clustered_values(8);
        let col = table.add_column(&values).unwrap();
        let handle = table.handle();
        let range = ValueRange::new(0, 500);
        let old = handle.pin();
        let before = old.query_range(col, &range);

        table.write(col, 0, 999_999);
        table.tick().unwrap();
        let new = handle.pin();
        assert!(new.generation() > old.generation());
        assert_eq!(
            old.query_range(col, &range),
            before,
            "pinned epoch keeps serving the pre-write answer"
        );
        assert_eq!(new.query_range(col, &range).count, before.count - 1);
        assert_eq!(old.value(col, 0), values[0]);
        assert_eq!(new.value(col, 0), 999_999);

        // Superseded epochs reclaim once their pins drop.
        drop(old);
        drop(new);
        table.quiesce().unwrap();
        assert_eq!(table.live_epochs(), 1);
    }

    #[test]
    fn routed_scans_use_the_installed_view() {
        let mut table = ServeTable::new(SimBackend::new(), serve_config());
        let col = table.add_column(&clustered_values(32)).unwrap();
        let range = ValueRange::new(5_000, 9_400);
        table.install_view(col, range).unwrap();
        let snap = table.handle().pin();
        let epoch = snap.column(col);
        let view = epoch.route(&range).expect("installed view covers range");
        assert_eq!(view.phys, vec![5, 6, 7, 8, 9]);
        // A range no view covers falls back to the full scan.
        assert!(epoch.route(&ValueRange::new(0, 100_000)).is_none());
    }

    #[test]
    fn view_page_lists_follow_alignment_rounds() {
        let mut table = ServeTable::new(SimBackend::new(), serve_config());
        let col = table.add_column(&clustered_values(32)).unwrap();
        let range = ValueRange::new(5_000, 9_400);
        table.install_view(col, range).unwrap();
        let handle = table.handle();

        // Move a value of page 20 into the view's range and wipe page 7
        // out of it.
        table.write(col, 20 * VALUES_PER_PAGE + 3, 6_000);
        for slot in 0..VALUES_PER_PAGE {
            table.write(col, 7 * VALUES_PER_PAGE + slot, 1);
        }
        table.quiesce().unwrap();

        let snap = handle.pin();
        let epoch = snap.column(col);
        let view = epoch.route(&range).expect("view survives alignment");
        let mut pages = view.phys.clone();
        pages.sort_unstable();
        assert_eq!(pages, vec![5, 6, 8, 9, 20]);
        assert_eq!(
            snap.query_range(col, &range).count,
            // Pages 5, 6, 8 qualify fully (511 values each), page 9
            // contributes 9000..=9400 (401 values), page 7 contributes
            // nothing any more, and row (20, 3) was moved in.
            3 * VALUES_PER_PAGE as u64 + 401 + 1,
        );
    }

    #[test]
    fn conjunctive_queries_match_naive_intersection() {
        let mut table = ServeTable::new(SimBackend::new(), serve_config());
        let a = clustered_values(16);
        let b: Vec<u64> = a.iter().map(|&v| v % 4_096).collect();
        let col_a = table.add_column(&a).unwrap();
        let col_b = table.add_column(&b).unwrap();
        table.write(col_a, 42, 5_100);
        table.write(col_b, 42, 7);
        table.tick().unwrap();

        let ra = ValueRange::new(5_000, 9_400);
        let rb = ValueRange::new(0, 100);
        let expected: Vec<u64> = (0..a.len() as u64)
            .filter(|&r| {
                let (va, vb) = if r == 42 {
                    (5_100, 7)
                } else {
                    (a[r as usize], b[r as usize])
                };
                ra.contains(va) && rb.contains(vb)
            })
            .collect();

        let snap = table.handle().pin();
        let answer = snap.query_conjunctive(&[(col_a, ra), (col_b, rb)]);
        assert_eq!(answer.count, expected.len() as u64);
        assert_eq!(answer.rows_checksum, checksum_rows(&expected));
        // Predicate order must not matter.
        assert_eq!(snap.query_conjunctive(&[(col_b, rb), (col_a, ra)]), answer);
    }

    #[test]
    fn group_commit_idle_batches_folds() {
        let config = AdaptiveConfig::default()
            .with_chunking(crate::config::AlignChunking::default().with_group_commit_idle(4));
        let mut table = ServeTable::new(SimBackend::new(), config);
        let col = table.add_column(&clustered_values(8)).unwrap();
        for i in 0..3 {
            table.write(col, i, 700_000 + i as u64);
            table.tick().unwrap();
            assert!(
                !table.round_in_flight(col),
                "below the group-commit threshold no round starts"
            );
        }
        table.write(col, 3, 700_003);
        table.tick().unwrap();
        assert!(table.round_in_flight(col), "threshold reached: queue folds");
        // Acknowledged-but-unfolded writes were readable the whole time.
        let snap = table.handle().pin();
        assert_eq!(snap.value(col, 0), 700_000);
        table.quiesce().unwrap();
    }

    fn concurrent_readers_match_sequential<B: Backend>(backend: B) {
        let mut table = ServeTable::new(backend, serve_config());
        let values = clustered_values(24);
        let col = table.add_column(&values).unwrap();
        table
            .install_view(col, ValueRange::new(5_000, 9_400))
            .unwrap();
        let handle = table.handle();
        let ranges = [
            ValueRange::new(5_000, 9_400),
            ValueRange::new(1_000, 3_400),
            ValueRange::new(800_000, 900_000),
        ];

        // Sequential twin: same writes, quiesced, queried single-threaded.
        let expected: Vec<RangeAnswer> = {
            let mut mirror = values.clone();
            let len = mirror.len();
            for i in 0..200usize {
                mirror[(i * 31) % len] = 800_000 + i as u64;
            }
            ranges
                .iter()
                .map(|r| reference_answer(&mirror, r))
                .collect()
        };

        let done = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            let done = &done;
            let mut readers = Vec::new();
            for _ in 0..4 {
                let handle = handle.clone();
                readers.push(scope.spawn(move || {
                    let mut last_generation = 0;
                    while !done.load(std::sync::atomic::Ordering::Acquire) {
                        let snap = handle.pin();
                        // Generations move forward only.
                        assert!(snap.generation() >= last_generation);
                        last_generation = snap.generation();
                        // Every epoch is internally consistent: the same
                        // scan twice on one snapshot is identical.
                        let a = snap.query_range(0, &ranges[0]);
                        let b = snap.query_range(0, &ranges[0]);
                        assert_eq!(a, b);
                    }
                }));
            }
            for i in 0..200usize {
                table.write(col, (i * 31) % values.len(), 800_000 + i as u64);
                table.tick().unwrap();
            }
            table.quiesce().unwrap();
            done.store(true, std::sync::atomic::Ordering::Release);
            for reader in readers {
                reader.join().unwrap();
            }
        });

        let snap = handle.pin();
        for (range, want) in ranges.iter().zip(&expected) {
            assert_eq!(snap.query_range(col, range), *want);
        }
    }

    #[test]
    fn concurrent_readers_match_sequential_sim() {
        concurrent_readers_match_sequential(SimBackend::new());
    }

    #[test]
    fn concurrent_readers_match_sequential_mmap() {
        concurrent_readers_match_sequential(MmapBackend::new());
    }

    #[test]
    fn install_view_rejects_busy_columns() {
        let mut table = ServeTable::new(SimBackend::new(), serve_config());
        let col = table.add_column(&clustered_values(8)).unwrap();
        table.write(col, 0, 1);
        assert!(table.install_view(col, ValueRange::new(0, 10)).is_err());
        table.quiesce().unwrap();
        assert!(table.install_view(col, ValueRange::new(0, 10)).is_ok());
    }

    #[test]
    fn zone_bands_widen_at_write_acknowledgement() {
        // Satellite invariant: the band of a written zone must cover both
        // the old and the new value *before* the write is folded, so the
        // incremental planner (which runs at fold time) can rely on the
        // live stats without consulting the overlay.
        let mut table = ServeTable::new(SimBackend::new(), serve_config());
        let col = table.add_column(&clustered_values(24)).unwrap();
        let stats = table.zone_stats(col);
        let zone = stats.zone_of_row(3);
        let before = stats.zone_band(zone).unwrap();
        assert!(!before.contains(5_000_000));

        table.write(col, 3, 5_000_000);
        // No tick yet: the write is only staged, but the band already
        // reflects it.
        let after = table.zone_stats(col).zone_band(zone).unwrap();
        assert!(after.contains(5_000_000), "band widened eagerly at ack");
        assert!(
            after.contains(before.low()) && after.contains(before.high()),
            "bands never retract, so the overwritten value stays covered"
        );
        table.quiesce().unwrap();
    }

    #[test]
    fn parallel_snapshots_match_sequential_answers() {
        let mut table = ServeTable::new(SimBackend::new(), serve_config());
        let values = clustered_values(24);
        let col_a = table.add_column(&values).unwrap();
        let b: Vec<u64> = values.iter().map(|&v| v % 4_096).collect();
        let col_b = table.add_column(&b).unwrap();
        table
            .install_view(col_a, ValueRange::new(5_000, 9_400))
            .unwrap();
        // Stage writes without quiescing, so the overlay, masks and frozen
        // copies are all live on the scanned epoch.
        for i in 0..40usize {
            table.write(col_a, (i * 17) % values.len(), 900_000 + i as u64);
        }
        table.tick().unwrap();
        let handle = table.handle();
        let ranges = [
            ValueRange::new(5_000, 9_400),
            ValueRange::new(0, 2_000),
            ValueRange::new(890_000, 1_000_000),
        ];
        let predicates = [
            (col_a, ValueRange::new(5_000, 9_400)),
            (col_b, ValueRange::new(0, 1_000)),
        ];
        let seq = handle.pin();
        for threads in [2usize, 3, 4] {
            let par = handle
                .clone()
                .with_parallelism(Parallelism::from_threads(threads))
                .pin();
            assert_eq!(par.generation(), seq.generation());
            for range in &ranges {
                assert_eq!(
                    par.query_range(col_a, range),
                    seq.query_range(col_a, range),
                    "threads {threads}"
                );
                assert_eq!(
                    par.collect_rows(col_a, range),
                    seq.collect_rows(col_a, range),
                    "threads {threads}"
                );
            }
            assert_eq!(
                par.query_conjunctive(&predicates),
                seq.query_conjunctive(&predicates),
                "threads {threads}"
            );
        }
        table.quiesce().unwrap();
    }

    #[test]
    fn sharded_writers_apply_per_writer_fifo() {
        let config = AdaptiveConfig::default().with_chunking(
            crate::config::AlignChunking::default()
                .with_chunk_updates(4)
                .with_group_commit_idle(0)
                .with_writer_shards(3),
        );
        let mut table = ServeTable::new(SimBackend::new(), config);
        let values = clustered_values(12);
        let col = table.add_column(&values).unwrap();
        assert_eq!(table.writer_shards(), 3);
        let writer = table.writer();
        assert_eq!(writer.shards(), 3);
        // Two writer threads over disjoint rows, each re-writing its rows
        // five times. Per-writer FIFO means the last sent value (k == 4)
        // wins for every row, no matter how the lanes interleave.
        std::thread::scope(|scope| {
            for w in 0..2usize {
                let writer = writer.clone();
                scope.spawn(move || {
                    for k in 0..5u64 {
                        for row in (w..24).step_by(2) {
                            writer.write(
                                col,
                                row,
                                1_000_000 * (w as u64 + 1) + 10 * row as u64 + k,
                            );
                        }
                    }
                });
            }
        });
        // Writers joined: drain the lanes, fold and retire everything.
        table.quiesce().unwrap();
        let snap = table.handle().pin();
        for w in 0..2usize {
            for row in (w..24).step_by(2) {
                assert_eq!(
                    snap.value(col, row),
                    1_000_000 * (w as u64 + 1) + 10 * row as u64 + 4,
                    "row {row} serves its writer's last write"
                );
            }
        }
    }

    #[test]
    fn per_shard_backpressure_folds_skewed_lanes() {
        // Global budget 8 over 2 shards: one lane folds at 4 distinct rows
        // even though the global threshold is nowhere near.
        let config = AdaptiveConfig::default().with_chunking(
            crate::config::AlignChunking::default()
                .with_chunk_updates(4)
                .with_group_commit_idle(1_000)
                .with_max_queued_writes(8)
                .with_writer_shards(2),
        );
        let mut table = ServeTable::new(SimBackend::new(), config);
        let col = table.add_column(&clustered_values(8)).unwrap();
        // Rows 0..3 live in page 0, which hashes to shard 0.
        for row in 0..3usize {
            table.write(col, row, 700_000 + row as u64);
            table.tick().unwrap();
            assert!(
                !table.round_in_flight(col),
                "below the per-shard threshold no round starts"
            );
        }
        table.write(col, 3, 700_003);
        table.tick().unwrap();
        assert!(
            table.round_in_flight(col),
            "the skewed lane reached its share of the budget"
        );
        table.quiesce().unwrap();
    }

    #[test]
    fn idle_ticks_retighten_zone_bands() {
        let config = AdaptiveConfig::default().with_chunking(
            crate::config::AlignChunking::default()
                .with_chunk_updates(4)
                .with_group_commit_idle(0)
                .with_retighten_idle_ticks(2),
        );
        let mut table = ServeTable::new(SimBackend::new(), config);
        let col = table.add_column(&clustered_values(24)).unwrap();
        let zone = table.zone_stats(col).zone_of_row(3);
        // Widen the band with an outlier, then restore the original value
        // and fold everything: the store no longer holds 5_000_000 but the
        // band (which never retracts during operation) still covers it.
        table.write(col, 3, 5_000_000);
        table.write(col, 3, 3);
        table.quiesce().unwrap();
        assert!(table
            .zone_stats(col)
            .zone_band(zone)
            .unwrap()
            .contains(5_000_000));
        // Idle ticks accumulate and trigger the rebuild.
        let mut ticks = 0;
        while table
            .zone_stats(col)
            .zone_band(zone)
            .unwrap()
            .contains(5_000_000)
        {
            assert!(ticks < 10, "band should retighten within a few idle ticks");
            table.tick().unwrap();
            ticks += 1;
        }
        let band = table.zone_stats(col).zone_band(zone).unwrap();
        assert!(band.contains(3), "rebuilt band covers the live data");
        let snap = table.handle().pin();
        assert_eq!(snap.value(col, 3), 3, "answers are unaffected");
    }

    #[test]
    fn writer_shard_hashing_groups_by_page() {
        assert_eq!(
            writer_shard_of(0, 4),
            writer_shard_of(VALUES_PER_PAGE - 1, 4),
            "one page, one lane"
        );
        assert_ne!(writer_shard_of(0, 4), writer_shard_of(VALUES_PER_PAGE, 4));
        assert_eq!(writer_shard_of(123, 1), 0);
        assert_eq!(writer_shard_of(123, 0), 0, "zero shards clamps to one lane");
    }

    #[test]
    fn checksum_is_order_independent() {
        let a = checksum_rows(&[1, 5, 9]);
        let b = checksum_rows(&[9, 1, 5]);
        assert_eq!(a, b);
        assert_ne!(a, checksum_rows(&[1, 5]));
        assert_ne!(checksum_rows(&[0]), checksum_rows(&[]));
    }

    fn temp_journal(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "asv-serve-wal-{}-{tag}-{n}.wal",
            std::process::id()
        ))
    }

    #[test]
    fn durable_table_recovers_to_quiesced_state() {
        let path = temp_journal("quiesced");
        let mut mirror = clustered_values(24);
        let range = ValueRange::new(5_000, 9_400);
        {
            let mut table = ServeTable::with_durability(
                SimBackend::new(),
                serve_config(),
                DurabilityConfig::new(&path),
            )
            .unwrap();
            let col = table.add_column(&mirror).unwrap();
            table.install_view(col, range).unwrap();
            for (i, row) in [3usize, 700, 1_400, 9_001].into_iter().enumerate() {
                table.write(col, row, 1_000_000 + i as u64);
                mirror[row] = 1_000_000 + i as u64;
            }
            table.quiesce().unwrap();
        }
        let (table, info) = ServeTable::recover(
            SimBackend::new(),
            serve_config(),
            DurabilityConfig::new(&path),
        )
        .unwrap();
        assert!(info.sealed_epoch > 0, "quiesce sealed the final epoch");
        assert_eq!(
            info.batches_applied, 0,
            "quiesce compacted the journal to a checkpoint"
        );
        assert_eq!(info.discarded_bytes, 0);
        assert!(
            table.generation() >= info.sealed_epoch,
            "epoch numbering continues across the crash"
        );
        let snap = table.handle().pin();
        assert_eq!(
            snap.query_range(0, &range),
            reference_answer(&mirror, &range)
        );
        assert_eq!(snap.value(0, 700), mirror[700]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn recovery_discards_the_unsealed_tail() {
        let path = temp_journal("tail");
        let mut mirror = clustered_values(12);
        let range = ValueRange::full();
        {
            let mut table = ServeTable::with_durability(
                SimBackend::new(),
                serve_config(),
                DurabilityConfig::new(&path),
            )
            .unwrap();
            let col = table.add_column(&mirror).unwrap();
            table.write(col, 42, 123_456);
            mirror[42] = 123_456;
            table.quiesce().unwrap();
            // Acknowledged but never sealed: the batch hits the journal,
            // but the process "dies" before the next tick's seal.
            table.try_write_batch(col, &[(7, 1), (8, 2)]).unwrap();
        }
        let (table, info) = ServeTable::recover(
            SimBackend::new(),
            serve_config(),
            DurabilityConfig::new(&path),
        )
        .unwrap();
        assert_eq!(info.batches_applied, 0, "the tail batch is not replayed");
        assert!(info.discarded_bytes > 0, "the tail bytes were discarded");
        let snap = table.handle().pin();
        assert_eq!(snap.value(0, 42), 123_456, "sealed writes survive");
        assert_eq!(snap.value(0, 7), mirror[7], "unsealed writes do not");
        assert_eq!(
            snap.query_range(0, &range),
            reference_answer(&mirror, &range)
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn injected_append_fault_stops_acknowledgement() {
        let path = temp_journal("fault");
        let mut mirror = clustered_values(12);
        {
            // The journal's first appends are AddColumn + Seal; fault the
            // append after the first write batch's seal.
            let durability = DurabilityConfig::new(&path).with_fault(FaultPlan::fail_append(4));
            let mut table =
                ServeTable::with_durability(SimBackend::new(), serve_config(), durability).unwrap();
            let col = table.add_column(&mirror).unwrap();
            table.try_write(col, 5, 555).unwrap();
            mirror[5] = 555;
            table.tick().unwrap();
            // Some later operation hits the injected fault and errors
            // without acknowledging; the exact op depends on tick cadence,
            // so keep issuing until the crash surfaces.
            let mut crashed = false;
            for attempt in 0..16u64 {
                if table.try_write(col, 6, attempt).is_err() || table.tick().is_err() {
                    crashed = true;
                    break;
                }
            }
            assert!(crashed, "the fault plan fires within a few operations");
        }
        let (table, _info) = ServeTable::recover(
            SimBackend::new(),
            serve_config(),
            DurabilityConfig::new(&path),
        )
        .unwrap();
        let snap = table.handle().pin();
        assert_eq!(snap.value(0, 5), 555, "the sealed write survives");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn durable_serving_on_the_file_backend() {
        let backend = asv_vmem::FileBackend::temp();
        let dir = backend.dir().to_path_buf();
        let path = temp_journal("file");
        let mut mirror = clustered_values(16);
        let range = ValueRange::new(2_000, 11_000);
        {
            let mut table =
                ServeTable::with_durability(backend, serve_config(), DurabilityConfig::new(&path))
                    .unwrap();
            let col = table.add_column(&mirror).unwrap();
            table.install_view(col, range).unwrap();
            for row in [10usize, 600, 1_200, 5_555] {
                table.write(col, row, (row as u64) * 7 + 1);
                mirror[row] = (row as u64) * 7 + 1;
            }
            table.quiesce().unwrap();
        }
        let recovered_backend = asv_vmem::FileBackend::temp();
        let recovered_dir = recovered_backend.dir().to_path_buf();
        let (table, info) = ServeTable::recover(
            recovered_backend,
            serve_config(),
            DurabilityConfig::new(&path),
        )
        .unwrap();
        assert!(info.sealed_epoch > 0);
        let snap = table.handle().pin();
        assert_eq!(
            snap.query_range(0, &range),
            reference_answer(&mirror, &range)
        );
        drop(snap);
        drop(table);
        std::fs::remove_file(&path).unwrap();
        let _ = std::fs::remove_dir_all(dir);
        let _ = std::fs::remove_dir_all(recovered_dir);
    }

    #[test]
    fn bounded_lanes_reject_writes_beyond_capacity() {
        let config = AdaptiveConfig::default().with_chunking(
            crate::config::AlignChunking::default()
                .with_chunk_updates(4)
                .with_writer_lane_capacity(2),
        );
        let mut table = ServeTable::new(SimBackend::new(), config);
        let col = table.add_column(&clustered_values(8)).unwrap();
        let writer = table.writer();
        assert!(writer.try_write(col, 0, 100));
        assert!(writer.try_write(col, 1, 101));
        assert!(
            !writer.try_write(col, 2, 102),
            "the third write exceeds the lane capacity"
        );
        table.tick().unwrap();
        assert!(
            writer.try_write(col, 2, 102),
            "draining the lane frees capacity"
        );
        table.quiesce().unwrap();
        let snap = table.handle().pin();
        assert_eq!(snap.value(col, 0), 100);
        assert_eq!(snap.value(col, 1), 101);
        assert_eq!(snap.value(col, 2), 102);
    }

    #[test]
    fn bounded_lane_blocks_writer_until_the_maintainer_drains() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let config = AdaptiveConfig::default().with_chunking(
            crate::config::AlignChunking::default()
                .with_chunk_updates(4)
                .with_writer_lane_capacity(1),
        );
        let mut table = ServeTable::new(SimBackend::new(), config);
        let col = table.add_column(&clustered_values(8)).unwrap();
        let writer = table.writer();
        let done = Arc::new(AtomicBool::new(false));
        let done_in_thread = Arc::clone(&done);
        let total = 64usize;
        let thread = std::thread::spawn(move || {
            // All writes hit row pages of one lane; with capacity 1 the
            // writer must block until the maintenance thread drains.
            for i in 0..total {
                writer.write(col, i % VALUES_PER_PAGE, 7_000 + i as u64);
            }
            done_in_thread.store(true, Ordering::Release);
        });
        while !done.load(Ordering::Acquire) {
            table.tick().unwrap();
            std::thread::yield_now();
        }
        thread.join().unwrap();
        table.quiesce().unwrap();
        let snap = table.handle().pin();
        assert_eq!(
            snap.value(col, (total - 1) % VALUES_PER_PAGE),
            7_000 + (total as u64) - 1,
            "the last blocked write landed"
        );
    }

    #[test]
    fn sparse_epoch_pages_past_the_data_hold_no_values() {
        // A column whose store has more pages than data: the epoch's
        // per-page valid count must clamp to zero past the last row
        // instead of wrapping to the partial-page remainder.
        let mut table = ServeTable::new(SimBackend::new(), serve_config());
        let values: Vec<u64> = (0..VALUES_PER_PAGE as u64 * 2 + 5).collect();
        let col = table.add_column(&values).unwrap();
        let snap = table.handle().pin();
        let epoch = &snap.pinned.columns[col];
        assert_eq!(epoch.valid_values(0), VALUES_PER_PAGE);
        assert_eq!(epoch.valid_values(1), VALUES_PER_PAGE);
        assert_eq!(epoch.valid_values(2), 5, "partial tail page");
        assert_eq!(epoch.valid_values(3), 0, "pages past the data are empty");
        assert_eq!(epoch.valid_values(17), 0);
    }
}
