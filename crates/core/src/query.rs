//! Range queries and their outcomes.

use std::time::Duration;

use asv_util::ValueRange;

use crate::router::ViewId;

/// A range-selection query `SELECT ... WHERE value BETWEEN l AND u`.
///
/// This is the query shape the paper's evaluation fires against the
/// adaptive storage layer (both bounds inclusive). A query may additionally
/// be marked *count-only* ([`Self::count_only`]): the scan then skips the
/// checksum accumulation entirely (the `COUNT(*)` fast path) while view
/// routing and adaptive maintenance behave exactly as for a full query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RangeQuery {
    range: ValueRange,
    count_only: bool,
}

impl RangeQuery {
    /// Creates a query selecting values in `[low, high]`.
    ///
    /// # Panics
    /// Panics if `low > high`.
    pub fn new(low: u64, high: u64) -> Self {
        Self {
            range: ValueRange::new(low, high),
            count_only: false,
        }
    }

    /// Creates a query from an existing [`ValueRange`].
    pub fn from_range(range: ValueRange) -> Self {
        Self {
            range,
            count_only: false,
        }
    }

    /// Marks this query as count-only: the answer's `sum` stays 0 and the
    /// per-value checksum accumulation is skipped on the scan hot path.
    ///
    /// Row collection takes precedence: when such a query is answered via
    /// `AdaptiveColumn::query_collect`, the rows (and the checksum, which
    /// is a by-product of the collecting scan) are produced as usual.
    pub fn count_only(mut self) -> Self {
        self.count_only = true;
        self
    }

    /// Returns `true` if this query only needs the qualifying-value count.
    pub fn is_count_only(&self) -> bool {
        self.count_only
    }

    /// The selected value range.
    pub fn range(&self) -> &ValueRange {
        &self.range
    }

    /// Lower bound of the selection (inclusive).
    pub fn low(&self) -> u64 {
        self.range.low()
    }

    /// Upper bound of the selection (inclusive).
    pub fn high(&self) -> u64 {
        self.range.high()
    }
}

impl From<ValueRange> for RangeQuery {
    fn from(range: ValueRange) -> Self {
        Self::from_range(range)
    }
}

/// The result of answering one [`RangeQuery`].
///
/// Besides the aggregate answer (count and checksum of qualifying values,
/// plus optionally the qualifying row ids) the outcome records the
/// execution characteristics the paper's figures plot: how many physical
/// pages were scanned, which and how many views were used, and whether a
/// new partial view was retained.
#[derive(Clone, Debug, Default)]
pub struct QueryOutcome {
    /// Number of qualifying values.
    pub count: u64,
    /// Sum of qualifying values (checksum used to validate equivalence with
    /// the full-scan baseline). Stays 0 for count-only queries — which skip
    /// the checksum accumulation on the hot path — unless row collection
    /// was requested, which computes the checksum as a by-product.
    pub sum: u128,
    /// Qualifying row ids, if collection was requested.
    pub rows: Option<Vec<u64>>,
    /// Number of distinct physical pages scanned to answer the query
    /// (plotted in Figure 4).
    pub scanned_pages: usize,
    /// The views used to answer the query (in scan order).
    pub views_used: Vec<ViewId>,
    /// What happened to the candidate partial view created alongside the
    /// query.
    pub view_maintenance: ViewMaintenance,
    /// Which execution strategy produced this outcome.
    pub executed: QueryExecution,
    /// Wall-clock time spent answering the query (including adaptive view
    /// creation).
    pub elapsed: Duration,
}

/// The execution strategy behind a [`QueryOutcome`] — planned conjunctive
/// execution mixes strategies within one query, and effort reporting must
/// tell them apart (a probe's `scanned_pages` are candidate pages touched,
/// not full view scans).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum QueryExecution {
    /// The adaptive path: routed to views, scanned, candidate view
    /// maintained (Listing 1).
    #[default]
    Adaptive,
    /// A plain full scan of the column, bypassing all views.
    FullScan,
    /// A semi-join residual probe restricted to candidate rows; touches
    /// only the pages containing candidates and maintains no views.
    Probe,
}

impl QueryOutcome {
    /// Number of views considered for this query (plotted in Figure 5).
    pub fn num_views_used(&self) -> usize {
        self.views_used.len()
    }

    /// Elapsed time in milliseconds (the unit of the paper's plots).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }
}

/// What the adaptive maintenance did with the candidate view produced as a
/// side-product of query answering (paper §2.2, Listing 1 lines 21-32).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ViewMaintenance {
    /// View creation was disabled or the view limit had been reached, so no
    /// candidate view was even built.
    #[default]
    NotAttempted,
    /// The candidate did not improve over the full view (it indexed at
    /// least as many pages) and was dropped.
    DiscardedNotSmaller,
    /// The candidate covered a subset of an existing partial view without
    /// indexing (sufficiently) fewer pages and was dropped.
    DiscardedSubsumed,
    /// The candidate covered a superset of an existing partial view of
    /// similar size and replaced it.
    ReplacedExisting,
    /// The candidate was inserted as a new partial view.
    Inserted,
}

impl ViewMaintenance {
    /// Returns `true` if the candidate view survived (was inserted or
    /// replaced an existing view).
    pub fn retained(&self) -> bool {
        matches!(
            self,
            ViewMaintenance::Inserted | ViewMaintenance::ReplacedExisting
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_constructors() {
        let q = RangeQuery::new(10, 20);
        assert_eq!(q.low(), 10);
        assert_eq!(q.high(), 20);
        assert_eq!(q.range(), &ValueRange::new(10, 20));
        let q2: RangeQuery = ValueRange::new(10, 20).into();
        assert_eq!(q, q2);
        assert_eq!(q, RangeQuery::from_range(ValueRange::new(10, 20)));
        assert!(!q.is_count_only());
        let c = q.count_only();
        assert!(c.is_count_only());
        assert_eq!(c.range(), q.range());
        assert_ne!(c, q);
    }

    #[test]
    #[should_panic(expected = "invalid range")]
    fn inverted_query_panics() {
        RangeQuery::new(20, 10);
    }

    #[test]
    fn outcome_helpers() {
        let mut o = QueryOutcome::default();
        assert_eq!(o.num_views_used(), 0);
        o.views_used.push(ViewId::Full);
        o.views_used.push(ViewId::Partial(3));
        assert_eq!(o.num_views_used(), 2);
        assert!(o.elapsed_ms() >= 0.0);
        assert_eq!(o.executed, QueryExecution::Adaptive);
    }

    #[test]
    fn maintenance_retained() {
        assert!(ViewMaintenance::Inserted.retained());
        assert!(ViewMaintenance::ReplacedExisting.retained());
        assert!(!ViewMaintenance::DiscardedSubsumed.retained());
        assert!(!ViewMaintenance::DiscardedNotSmaller.retained());
        assert!(!ViewMaintenance::NotAttempted.retained());
    }
}
