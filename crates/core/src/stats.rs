//! Per-query records and sequence-level statistics.
//!
//! The paper's adaptive experiments (Figures 4 and 5, Table 1) plot, per
//! query of a 250-query sequence: the response time, the number of scanned
//! physical pages, and the number of views considered — plus the accumulated
//! response time over the whole sequence. [`QueryRecord`] and
//! [`SequenceStats`] capture exactly that and are consumed by the
//! experiment harness.

use std::time::Duration;

use crate::query::{QueryExecution, QueryOutcome};
use crate::table::ConjunctiveOutcome;

/// The measurements of a single query within a sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryRecord {
    /// Position of the query in the sequence (0-based).
    pub index: usize,
    /// Response time.
    pub elapsed: Duration,
    /// Number of distinct physical pages scanned.
    pub scanned_pages: usize,
    /// Number of views used to answer the query.
    pub views_used: usize,
    /// Whether the candidate view created alongside the query was retained.
    pub view_retained: bool,
    /// Number of qualifying values (the query's result cardinality).
    pub result_count: u64,
}

impl QueryRecord {
    /// Builds a record from a query outcome.
    pub fn from_outcome(index: usize, outcome: &QueryOutcome) -> Self {
        Self {
            index,
            elapsed: outcome.elapsed,
            scanned_pages: outcome.scanned_pages,
            views_used: outcome.num_views_used(),
            view_retained: outcome.view_maintenance.retained(),
            result_count: outcome.count,
        }
    }

    /// Response time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed.as_secs_f64() * 1e3
    }
}

/// Statistics over a whole query sequence.
#[derive(Clone, Debug, Default)]
pub struct SequenceStats {
    records: Vec<QueryRecord>,
}

impl SequenceStats {
    /// Creates an empty statistics collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of the next query in the sequence.
    pub fn record(&mut self, outcome: &QueryOutcome) {
        let index = self.records.len();
        self.records.push(QueryRecord::from_outcome(index, outcome));
    }

    /// All per-query records in sequence order.
    pub fn records(&self) -> &[QueryRecord] {
        &self.records
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no queries were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Accumulated response time over the sequence (the quantity of
    /// Table 1).
    pub fn accumulated_time(&self) -> Duration {
        self.records.iter().map(|r| r.elapsed).sum()
    }

    /// Accumulated response time in seconds.
    pub fn accumulated_seconds(&self) -> f64 {
        self.accumulated_time().as_secs_f64()
    }

    /// Total number of pages scanned over the sequence.
    pub fn total_scanned_pages(&self) -> usize {
        self.records.iter().map(|r| r.scanned_pages).sum()
    }

    /// Number of queries whose candidate view was retained.
    pub fn views_retained(&self) -> usize {
        self.records.iter().filter(|r| r.view_retained).count()
    }

    /// Largest number of views used by any single query (Figure 5's right
    /// axis).
    pub fn max_views_used(&self) -> usize {
        self.records.iter().map(|r| r.views_used).max().unwrap_or(0)
    }

    /// Mean response time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.accumulated_seconds() * 1e3 / self.records.len() as f64
        }
    }
}

/// The measurements of one published alignment chunk.
///
/// Chunked background alignment ([`crate::align`]) publishes a batch as a
/// sequence of bounded chunks, each its own view epoch. The per-chunk
/// publish time is the quantity the chunking exists to bound: it is the
/// only part of alignment that excludes queries. [`crate::AdaptiveColumn`]
/// records one of these per published chunk; the `align-overlap`
/// experiment reports their percentiles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChunkPublishRecord {
    /// Position of the chunk within its alignment round (0-based).
    pub chunk_index: usize,
    /// Deduplicated updates folded by this chunk.
    pub updates: usize,
    /// `(view, page)` additions performed by this chunk.
    pub pages_added: usize,
    /// `(view, page)` removals performed by this chunk.
    pub pages_removed: usize,
    /// Wall time of the publish step (replaying the chunk's ops onto the
    /// real view buffers) — the query-excluding window.
    pub publish_time: Duration,
    /// The view epoch entered by this publish.
    pub generation: u64,
}

impl ChunkPublishRecord {
    /// Publish time in milliseconds.
    pub fn publish_ms(&self) -> f64 {
        self.publish_time.as_secs_f64() * 1e3
    }
}

/// Publish-latency statistics over a sequence of chunk publishes.
#[derive(Clone, Debug, Default)]
pub struct ChunkPublishStats {
    records: Vec<ChunkPublishRecord>,
}

impl ChunkPublishStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a collector from existing records.
    pub fn from_records(records: Vec<ChunkPublishRecord>) -> Self {
        Self { records }
    }

    /// Appends one chunk publish.
    pub fn record(&mut self, record: ChunkPublishRecord) {
        self.records.push(record);
    }

    /// All records in publish order.
    pub fn records(&self) -> &[ChunkPublishRecord] {
        &self.records
    }

    /// Number of recorded publishes.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The `p`-th percentile (0.0 ..= 100.0, nearest-rank) of the publish
    /// latencies, in milliseconds. Returns 0 for an empty collector.
    pub fn publish_ms_percentile(&self, p: f64) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let mut ms: Vec<f64> = self.records.iter().map(|r| r.publish_ms()).collect();
        ms.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        let rank = ((p / 100.0) * ms.len() as f64).ceil() as usize;
        ms[rank.clamp(1, ms.len()) - 1]
    }

    /// The largest publish latency in milliseconds (0 when empty).
    pub fn max_publish_ms(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.publish_ms())
            .fold(0.0, f64::max)
    }

    /// Total updates folded across all recorded chunks.
    pub fn total_updates(&self) -> usize {
        self.records.iter().map(|r| r.updates).sum()
    }
}

/// The measurements of one conjunctive multi-column query, split by
/// execution strategy: planned execution mixes full adaptive scans with
/// semi-join probes, and the per-query page effort of each tells the
/// planner's story (probe pages collapse when the driving predicate is
/// selective).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConjunctiveRecord {
    /// Position of the query in the sequence (0-based).
    pub index: usize,
    /// Wall-clock time of the whole conjunctive execution.
    pub elapsed: Duration,
    /// Pages touched by full adaptive (and full-scan) steps.
    pub scan_pages: usize,
    /// Pages touched by semi-join probe steps.
    pub probe_pages: usize,
    /// Number of steps that ran the full adaptive path.
    pub num_scans: usize,
    /// Number of semi-join probe steps.
    pub num_probes: usize,
    /// Number of rows satisfying all predicates.
    pub result_rows: usize,
}

impl ConjunctiveRecord {
    /// Builds a record from a conjunctive outcome.
    pub fn from_outcome(index: usize, outcome: &ConjunctiveOutcome) -> Self {
        let mut scan_pages = 0usize;
        let mut probe_pages = 0usize;
        let mut num_scans = 0usize;
        let mut num_probes = 0usize;
        for step in &outcome.per_column {
            if step.executed == QueryExecution::Probe {
                probe_pages += step.scanned_pages;
                num_probes += 1;
            } else {
                scan_pages += step.scanned_pages;
                num_scans += 1;
            }
        }
        Self {
            index,
            elapsed: outcome.elapsed,
            scan_pages,
            probe_pages,
            num_scans,
            num_probes,
            result_rows: outcome.rows.len(),
        }
    }

    /// Total pages touched by the query.
    pub fn total_pages(&self) -> usize {
        self.scan_pages + self.probe_pages
    }
}

/// Statistics over a sequence of conjunctive queries.
#[derive(Clone, Debug, Default)]
pub struct ConjunctiveStats {
    records: Vec<ConjunctiveRecord>,
}

impl ConjunctiveStats {
    /// Creates an empty statistics collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the outcome of the next conjunctive query in the sequence.
    pub fn record(&mut self, outcome: &ConjunctiveOutcome) {
        let index = self.records.len();
        self.records
            .push(ConjunctiveRecord::from_outcome(index, outcome));
    }

    /// All per-query records in sequence order.
    pub fn records(&self) -> &[ConjunctiveRecord] {
        &self.records
    }

    /// Number of recorded queries.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no queries were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Accumulated response time over the sequence.
    pub fn accumulated_time(&self) -> Duration {
        self.records.iter().map(|r| r.elapsed).sum()
    }

    /// Accumulated response time in seconds.
    pub fn accumulated_seconds(&self) -> f64 {
        self.accumulated_time().as_secs_f64()
    }

    /// Total pages touched over the sequence (scans + probes).
    pub fn total_pages(&self) -> usize {
        self.records.iter().map(|r| r.total_pages()).sum()
    }

    /// Pages touched by full adaptive scans over the sequence.
    pub fn total_scan_pages(&self) -> usize {
        self.records.iter().map(|r| r.scan_pages).sum()
    }

    /// Pages touched by semi-join probes over the sequence.
    pub fn total_probe_pages(&self) -> usize {
        self.records.iter().map(|r| r.probe_pages).sum()
    }

    /// Mean response time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        if self.records.is_empty() {
            0.0
        } else {
            self.accumulated_seconds() * 1e3 / self.records.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::ViewMaintenance;
    use crate::router::ViewId;

    fn outcome(ms: u64, pages: usize, views: usize, retained: bool) -> QueryOutcome {
        QueryOutcome {
            count: 42,
            sum: 0,
            rows: None,
            scanned_pages: pages,
            views_used: vec![ViewId::Full; views],
            view_maintenance: if retained {
                ViewMaintenance::Inserted
            } else {
                ViewMaintenance::DiscardedSubsumed
            },
            executed: crate::query::QueryExecution::Adaptive,
            elapsed: Duration::from_millis(ms),
        }
    }

    #[test]
    fn empty_stats() {
        let s = SequenceStats::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.accumulated_time(), Duration::ZERO);
        assert_eq!(s.mean_ms(), 0.0);
        assert_eq!(s.max_views_used(), 0);
    }

    #[test]
    fn record_and_aggregate() {
        let mut s = SequenceStats::new();
        s.record(&outcome(10, 100, 1, true));
        s.record(&outcome(30, 50, 3, false));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.accumulated_time(), Duration::from_millis(40));
        assert!((s.accumulated_seconds() - 0.04).abs() < 1e-9);
        assert_eq!(s.total_scanned_pages(), 150);
        assert_eq!(s.views_retained(), 1);
        assert_eq!(s.max_views_used(), 3);
        assert!((s.mean_ms() - 20.0).abs() < 1e-9);
        let r = &s.records()[1];
        assert_eq!(r.index, 1);
        assert_eq!(r.result_count, 42);
        assert!((r.elapsed_ms() - 30.0).abs() < 1e-9);
        assert!(!r.view_retained);
    }

    #[test]
    fn from_outcome_copies_fields() {
        let o = outcome(5, 7, 2, true);
        let r = QueryRecord::from_outcome(9, &o);
        assert_eq!(r.index, 9);
        assert_eq!(r.scanned_pages, 7);
        assert_eq!(r.views_used, 2);
        assert!(r.view_retained);
    }

    fn conjunctive_outcome() -> ConjunctiveOutcome {
        let mut scan = outcome(10, 100, 1, false);
        scan.executed = QueryExecution::Adaptive;
        let mut probe = outcome(5, 8, 0, false);
        probe.executed = QueryExecution::Probe;
        ConjunctiveOutcome {
            rows: vec![1, 2, 3],
            per_column: vec![scan, probe],
            executed_order: vec![1, 0],
            plan: None,
            elapsed: Duration::from_millis(20),
        }
    }

    #[test]
    fn conjunctive_record_splits_scan_and_probe_pages() {
        let r = ConjunctiveRecord::from_outcome(3, &conjunctive_outcome());
        assert_eq!(r.index, 3);
        assert_eq!(r.scan_pages, 100);
        assert_eq!(r.probe_pages, 8);
        assert_eq!(r.total_pages(), 108);
        assert_eq!(r.num_scans, 1);
        assert_eq!(r.num_probes, 1);
        assert_eq!(r.result_rows, 3);
        assert_eq!(r.elapsed, Duration::from_millis(20));
    }

    fn chunk(updates: usize, ms: u64) -> ChunkPublishRecord {
        ChunkPublishRecord {
            chunk_index: 0,
            updates,
            pages_added: 1,
            pages_removed: 0,
            publish_time: Duration::from_millis(ms),
            generation: 1,
        }
    }

    #[test]
    fn chunk_publish_percentiles() {
        let empty = ChunkPublishStats::new();
        assert!(empty.is_empty());
        assert_eq!(empty.publish_ms_percentile(50.0), 0.0);
        assert_eq!(empty.max_publish_ms(), 0.0);

        let mut s = ChunkPublishStats::from_records(vec![chunk(4, 10)]);
        for ms in [20, 30, 40] {
            s.record(chunk(4, ms));
        }
        assert_eq!(s.len(), 4);
        assert_eq!(s.total_updates(), 16);
        assert!((s.publish_ms_percentile(50.0) - 20.0).abs() < 1e-9);
        assert!((s.publish_ms_percentile(100.0) - 40.0).abs() < 1e-9);
        assert!((s.publish_ms_percentile(0.0) - 10.0).abs() < 1e-9);
        assert!((s.max_publish_ms() - 40.0).abs() < 1e-9);
        assert!((s.records()[0].publish_ms() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn conjunctive_stats_aggregate() {
        let mut s = ConjunctiveStats::new();
        assert!(s.is_empty());
        s.record(&conjunctive_outcome());
        s.record(&conjunctive_outcome());
        assert_eq!(s.len(), 2);
        assert_eq!(s.records()[1].index, 1);
        assert_eq!(s.total_pages(), 216);
        assert_eq!(s.total_scan_pages(), 200);
        assert_eq!(s.total_probe_pages(), 16);
        assert_eq!(s.accumulated_time(), Duration::from_millis(40));
        assert!((s.mean_ms() - 20.0).abs() < 1e-9);
    }
}
