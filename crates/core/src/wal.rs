//! Crash-consistent write-ahead journal for the serving layer.
//!
//! The journal makes the chunked epoch publishes of [`crate::serve`] the
//! durability points the ROADMAP asks for: every update batch is appended
//! as a length-prefixed, checksummed record *before* it is acknowledged,
//! and every epoch publish appends a **seal** record. Recovery replays the
//! journal up to the last seal, discards the torn tail, and rebuilds the
//! table (views are reconstructed from the recorded view ranges — they are
//! virtual memory and carry no data of their own).
//!
//! ## On-disk format
//!
//! ```text
//! +----------------------+
//! | magic  "ASVWAL01"    |  8 bytes
//! +----------------------+
//! | record 0             |
//! | record 1             |
//! | ...                  |
//! +----------------------+
//!
//! record := [payload_len: u32 LE] [payload] [fnv1a64(payload): u64 LE]
//! payload := kind-tagged body (see `WalRecord`)
//! ```
//!
//! A record is *valid* iff its length prefix fits in the file and the
//! checksum matches; replay stops at the first invalid record. A prefix of
//! the journal is *sealed* iff it ends in a `Seal` record — the recovery
//! invariant is: **exactly the records up to the last valid seal are
//! replayed; everything after it (acknowledged or torn) is discarded.**
//!
//! ## Fault injection
//!
//! Because this module exists to be crash-tested, the journal carries an
//! optional deterministic [`FaultPlan`]: fail, short-write or tear the Nth
//! append, or fail the Nth fsync (modelled as losing everything written
//! since the last successful sync). After an injected fault the journal is
//! *crashed* — every later operation fails — so a test can drive a workload
//! to an exact crash point, drop the table, and exercise recovery by
//! construction rather than by luck.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// File magic identifying an asv journal, version 1.
pub const WAL_MAGIC: &[u8; 8] = b"ASVWAL01";

/// Upper bound on a single record payload (sanity check during replay).
const MAX_PAYLOAD: usize = 1 << 30;

const KIND_ADD_COLUMN: u8 = 1;
const KIND_INSTALL_VIEW: u8 = 2;
const KIND_BATCH: u8 = 3;
const KIND_SEAL: u8 = 4;

/// FNV-1a 64-bit hash — the record checksum (no external deps, stable
/// across platforms).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One logical journal record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// A column added to the table with its initial values.
    AddColumn {
        /// Column index (append order).
        col: u32,
        /// Initial column values.
        values: Vec<u64>,
    },
    /// A partial view installed over a value range of a column.
    InstallView {
        /// Column index.
        col: u32,
        /// Inclusive lower bound of the view's value range.
        min: u64,
        /// Inclusive upper bound of the view's value range.
        max: u64,
    },
    /// An acknowledged batch of point writes `(row, new_value)`.
    Batch {
        /// Column index.
        col: u32,
        /// The writes, in acknowledgement order.
        writes: Vec<(u64, u64)>,
    },
    /// An epoch seal: everything before this record is recoverable.
    Seal {
        /// The published epoch (the serve generation counter).
        epoch: u64,
    },
}

impl WalRecord {
    fn encode_payload(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WalRecord::AddColumn { col, values } => {
                out.push(KIND_ADD_COLUMN);
                out.extend_from_slice(&col.to_le_bytes());
                out.extend_from_slice(&(values.len() as u64).to_le_bytes());
                for v in values {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            WalRecord::InstallView { col, min, max } => {
                out.push(KIND_INSTALL_VIEW);
                out.extend_from_slice(&col.to_le_bytes());
                out.extend_from_slice(&min.to_le_bytes());
                out.extend_from_slice(&max.to_le_bytes());
            }
            WalRecord::Batch { col, writes } => {
                out.push(KIND_BATCH);
                out.extend_from_slice(&col.to_le_bytes());
                out.extend_from_slice(&(writes.len() as u64).to_le_bytes());
                for (row, value) in writes {
                    out.extend_from_slice(&row.to_le_bytes());
                    out.extend_from_slice(&value.to_le_bytes());
                }
            }
            WalRecord::Seal { epoch } => {
                out.push(KIND_SEAL);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
        }
        out
    }

    fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let mut cur = Cursor { buf: payload };
        let kind = cur.u8()?;
        let record = match kind {
            KIND_ADD_COLUMN => {
                let col = cur.u32()?;
                let n = cur.u64()? as usize;
                let mut values = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    values.push(cur.u64()?);
                }
                WalRecord::AddColumn { col, values }
            }
            KIND_INSTALL_VIEW => WalRecord::InstallView {
                col: cur.u32()?,
                min: cur.u64()?,
                max: cur.u64()?,
            },
            KIND_BATCH => {
                let col = cur.u32()?;
                let n = cur.u64()? as usize;
                let mut writes = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    let row = cur.u64()?;
                    let value = cur.u64()?;
                    writes.push((row, value));
                }
                WalRecord::Batch { col, writes }
            }
            KIND_SEAL => WalRecord::Seal { epoch: cur.u64()? },
            _ => return None,
        };
        if cur.remaining() != 0 {
            return None; // trailing garbage inside a framed payload
        }
        Some(record)
    }

    /// The full framed encoding of this record (length prefix + payload +
    /// checksum).
    pub fn encode(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut out = Vec::with_capacity(payload.len() + 12);
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv1a64(&payload).to_le_bytes());
        out
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Option<&[u8]> {
        if self.buf.len() < n {
            return None;
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Some(head)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }
}

/// Which journal operation a [`FaultPlan`] targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The Nth append writes nothing at all, then the journal is dead.
    FailAppend,
    /// The Nth append writes only a seeded-length clean prefix of the
    /// record (a short write: frame cut off, bytes intact).
    ShortAppend,
    /// The Nth append writes a seeded-length prefix whose last byte is
    /// bit-flipped (a torn write: bytes on disk are wrong).
    TornAppend,
    /// The Nth fsync fails and everything written since the last successful
    /// sync is lost (the power-loss model: the page cache never hit disk).
    FailFsync,
}

/// A deterministic, seeded crash plan for the journal.
///
/// Exactly one operation misbehaves; afterwards the journal is *crashed*
/// and every call returns an error, so the embedding table stops exactly
/// where a killed process would.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    kind: FaultKind,
    /// Zero-based index of the targeted operation (appends for the append
    /// kinds, fsyncs for `FailFsync`).
    at_op: usize,
    seed: u64,
}

impl FaultPlan {
    /// The Nth append (0-based) writes nothing.
    pub fn fail_append(at_op: usize) -> Self {
        Self {
            kind: FaultKind::FailAppend,
            at_op,
            seed: 0,
        }
    }

    /// The Nth append writes a seeded-length clean prefix.
    pub fn short_append(at_op: usize, seed: u64) -> Self {
        Self {
            kind: FaultKind::ShortAppend,
            at_op,
            seed,
        }
    }

    /// The Nth append writes a seeded-length prefix with a corrupted final
    /// byte.
    pub fn torn_append(at_op: usize, seed: u64) -> Self {
        Self {
            kind: FaultKind::TornAppend,
            at_op,
            seed,
        }
    }

    /// The Nth fsync fails, losing everything since the last sync.
    pub fn fail_fsync(at_op: usize) -> Self {
        Self {
            kind: FaultKind::FailFsync,
            at_op,
            seed: 0,
        }
    }

    /// Deterministic prefix length in `[min_len, full_len]` derived from
    /// the seed (splitmix64 step).
    fn prefix_len(&self, full_len: usize, min_len: usize) -> usize {
        let mut z = self.seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let span = full_len - min_len + 1;
        min_len + (z as usize) % span
    }
}

fn injected(what: &str) -> io::Error {
    io::Error::other(format!("injected journal fault: {what}"))
}

/// An append-only journal handle with crash-consistent framing and
/// deterministic fault injection.
pub struct Journal {
    file: std::fs::File,
    path: PathBuf,
    fault: Option<FaultPlan>,
    appends: usize,
    fsyncs: usize,
    len: u64,
    synced_len: u64,
    crashed: bool,
}

impl Journal {
    /// Creates (truncating) a fresh journal at `path` and writes the magic.
    pub fn create(path: impl Into<PathBuf>, fault: Option<FaultPlan>) -> io::Result<Journal> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_data()?;
        let len = WAL_MAGIC.len() as u64;
        Ok(Journal {
            file,
            path,
            fault,
            appends: 0,
            fsyncs: 0,
            len,
            synced_len: len,
            crashed: false,
        })
    }

    /// Opens an existing journal for appending. The file must carry the
    /// journal magic; the write position is the end of the file (callers
    /// recover/compact first, so the file ends at a sealed record).
    pub fn open_append(path: impl Into<PathBuf>, fault: Option<FaultPlan>) -> io::Result<Journal> {
        let path = path.into();
        let mut file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&path)?;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)
            .map_err(|_| io::Error::other("journal shorter than its magic"))?;
        if &magic != WAL_MAGIC {
            return Err(io::Error::other("not an asv journal (bad magic)"));
        }
        let len = file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            file,
            path,
            fault,
            appends: 0,
            fsyncs: 0,
            len,
            synced_len: len,
            crashed: false,
        })
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Current journal length in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// Whether an injected fault has killed this journal.
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Number of successful record appends so far.
    pub fn appends(&self) -> usize {
        self.appends
    }

    /// Number of successful fsyncs so far.
    pub fn fsyncs(&self) -> usize {
        self.fsyncs
    }

    /// The not-yet-fired fault plan adjusted for a journal reopened after
    /// this one: the targeted op index is reduced by the operations this
    /// journal already counted, so `Journal::open_append(path,
    /// journal.carryover_fault())` fires at the same absolute operation
    /// the original plan targeted.
    pub fn carryover_fault(&self) -> Option<FaultPlan> {
        self.fault.map(|plan| {
            let done = match plan.kind {
                FaultKind::FailFsync => self.fsyncs,
                _ => self.appends,
            };
            FaultPlan {
                at_op: plan.at_op.saturating_sub(done),
                ..plan
            }
        })
    }

    /// Appends one record. With a [`FaultPlan`] targeting this append, the
    /// record is dropped / cut short / torn as planned, the journal goes
    /// into the crashed state and an error is returned — the caller must
    /// not acknowledge the corresponding writes.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        if self.crashed {
            return Err(injected("journal already crashed"));
        }
        let encoded = record.encode();
        if let Some(plan) = self.fault {
            let is_append_fault = matches!(
                plan.kind,
                FaultKind::FailAppend | FaultKind::ShortAppend | FaultKind::TornAppend
            );
            if is_append_fault && self.appends == plan.at_op {
                self.crashed = true;
                match plan.kind {
                    FaultKind::FailAppend => {}
                    FaultKind::ShortAppend => {
                        let keep = plan.prefix_len(encoded.len() - 1, 0);
                        self.file.write_all(&encoded[..keep])?;
                        self.len += keep as u64;
                    }
                    FaultKind::TornAppend => {
                        let keep = plan.prefix_len(encoded.len(), 1);
                        let mut torn = encoded[..keep].to_vec();
                        *torn.last_mut().expect("keep >= 1") ^= 0xFF;
                        self.file.write_all(&torn)?;
                        self.len += keep as u64;
                    }
                    FaultKind::FailFsync => unreachable!("not an append fault"),
                }
                return Err(injected("append"));
            }
        }
        self.file.write_all(&encoded)?;
        self.len += encoded.len() as u64;
        self.appends += 1;
        Ok(())
    }

    /// Fsyncs the journal. With a [`FaultPlan`] targeting this fsync, the
    /// file is rolled back to the last successfully synced length (the
    /// power-loss model) and the journal goes into the crashed state.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.crashed {
            return Err(injected("journal already crashed"));
        }
        if let Some(plan) = self.fault {
            if plan.kind == FaultKind::FailFsync && self.fsyncs == plan.at_op {
                self.crashed = true;
                self.file.set_len(self.synced_len)?;
                self.file.sync_data()?;
                self.len = self.synced_len;
                return Err(injected("fsync"));
            }
        }
        self.file.sync_data()?;
        self.synced_len = self.len;
        self.fsyncs += 1;
        Ok(())
    }
}

/// The result of replaying a journal file.
#[derive(Clone, Debug)]
pub struct ReplayOutcome {
    /// All records up to and including the last valid seal, in order.
    pub sealed_records: Vec<WalRecord>,
    /// Epoch of the last seal (`None` if the journal never sealed).
    pub sealed_epoch: Option<u64>,
    /// Byte offset just past the last seal record.
    pub sealed_len: u64,
    /// Byte offset just past the last *valid* record (>= `sealed_len`).
    pub valid_len: u64,
    /// Total journal size in bytes, including any torn tail.
    pub total_len: u64,
    /// Number of valid-but-unsealed records after the last seal.
    pub unsealed_records: usize,
}

impl ReplayOutcome {
    /// Bytes past the last seal that recovery discards (unsealed records
    /// plus any torn tail).
    pub fn discarded_bytes(&self) -> u64 {
        self.total_len - self.sealed_len
    }
}

/// Replays the journal at `path`: validates framing and checksums, stops
/// at the first invalid record, and returns everything up to the last
/// seal. A missing-or-empty file replays as an empty journal.
pub fn replay(path: impl AsRef<Path>) -> io::Result<ReplayOutcome> {
    let bytes = match std::fs::read(path.as_ref()) {
        Ok(b) => b,
        Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let total_len = bytes.len() as u64;
    if bytes.len() < WAL_MAGIC.len() {
        // Crash before the magic hit the disk: an empty journal.
        return Ok(ReplayOutcome {
            sealed_records: Vec::new(),
            sealed_epoch: None,
            sealed_len: 0,
            valid_len: 0,
            total_len,
            unsealed_records: 0,
        });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(io::Error::other("not an asv journal (bad magic)"));
    }
    let mut offset = WAL_MAGIC.len();
    let mut records = Vec::new();
    let mut sealed_upto = 0usize; // record count up to last seal
    let mut sealed_epoch = None;
    let mut sealed_len = WAL_MAGIC.len() as u64;
    let mut valid_len = WAL_MAGIC.len() as u64;
    while offset + 4 <= bytes.len() {
        let payload_len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        if payload_len == 0 || payload_len > MAX_PAYLOAD {
            break;
        }
        let payload_start = offset + 4;
        let checksum_start = payload_start + payload_len;
        let record_end = checksum_start + 8;
        if record_end > bytes.len() {
            break; // truncated record
        }
        let payload = &bytes[payload_start..checksum_start];
        let stored = u64::from_le_bytes(bytes[checksum_start..record_end].try_into().unwrap());
        if fnv1a64(payload) != stored {
            break; // torn record
        }
        let Some(record) = WalRecord::decode_payload(payload) else {
            break; // checksummed but undecodable: treat as end of journal
        };
        offset = record_end;
        valid_len = offset as u64;
        let is_seal = matches!(record, WalRecord::Seal { .. });
        if let WalRecord::Seal { epoch } = record {
            sealed_epoch = Some(epoch);
        }
        records.push(record);
        if is_seal {
            sealed_upto = records.len();
            sealed_len = offset as u64;
        }
    }
    let unsealed_records = records.len() - sealed_upto;
    records.truncate(sealed_upto);
    Ok(ReplayOutcome {
        sealed_records: records,
        sealed_epoch,
        sealed_len,
        valid_len,
        total_len,
        unsealed_records,
    })
}

/// Atomically rewrites the journal at `path` to hold exactly `records`
/// (compaction): writes a temp file, fsyncs it, renames it over `path`
/// and fsyncs the directory.
pub fn rewrite(path: impl AsRef<Path>, records: &[WalRecord]) -> io::Result<()> {
    let path = path.as_ref();
    let tmp = path.with_extension("wal.tmp");
    {
        let mut file = std::fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        file.write_all(WAL_MAGIC)?;
        for record in records {
            file.write_all(&record.encode())?;
        }
        file.sync_data()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("asv-wal-test-{}-{tag}-{n}.wal", std::process::id()))
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::AddColumn {
                col: 0,
                values: vec![10, 20, 30],
            },
            WalRecord::InstallView {
                col: 0,
                min: 5,
                max: 25,
            },
            WalRecord::Batch {
                col: 0,
                writes: vec![(1, 99), (2, 98)],
            },
            WalRecord::Seal { epoch: 1 },
        ]
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Reference values of the standard FNV-1a 64 parameters.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn records_roundtrip_through_encode_decode() {
        for record in sample_records() {
            let encoded = record.encode();
            let payload_len = u32::from_le_bytes(encoded[..4].try_into().unwrap()) as usize;
            let payload = &encoded[4..4 + payload_len];
            assert_eq!(WalRecord::decode_payload(payload), Some(record));
        }
    }

    #[test]
    fn append_replay_roundtrip() {
        let path = temp_path("roundtrip");
        let mut journal = Journal::create(&path, None).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        journal.sync().unwrap();
        assert_eq!(journal.appends(), 4);
        assert_eq!(journal.fsyncs(), 1);
        drop(journal);
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.sealed_records, sample_records());
        assert_eq!(outcome.sealed_epoch, Some(1));
        assert_eq!(outcome.unsealed_records, 0);
        assert_eq!(outcome.discarded_bytes(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn unsealed_tail_is_replayed_but_not_included() {
        let path = temp_path("unsealed");
        let mut journal = Journal::create(&path, None).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        // Two acknowledged-but-unsealed batches after the seal.
        journal
            .append(&WalRecord::Batch {
                col: 0,
                writes: vec![(0, 7)],
            })
            .unwrap();
        journal
            .append(&WalRecord::Batch {
                col: 0,
                writes: vec![(1, 8)],
            })
            .unwrap();
        drop(journal);
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.sealed_records.len(), 4);
        assert_eq!(outcome.unsealed_records, 2);
        assert!(outcome.valid_len > outcome.sealed_len);
        assert!(outcome.discarded_bytes() > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_or_short_journal_replays_empty() {
        let outcome = replay(temp_path("missing")).unwrap();
        assert!(outcome.sealed_records.is_empty());
        assert_eq!(outcome.sealed_epoch, None);

        let path = temp_path("short");
        std::fs::write(&path, b"ASV").unwrap();
        let outcome = replay(&path).unwrap();
        assert!(outcome.sealed_records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let path = temp_path("foreign");
        std::fs::write(&path, b"definitely not a journal").unwrap();
        assert!(replay(&path).is_err());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn fail_append_leaves_prior_records_intact() {
        let path = temp_path("fail-append");
        let mut journal = Journal::create(&path, Some(FaultPlan::fail_append(2))).unwrap();
        let records = sample_records();
        journal.append(&records[0]).unwrap();
        journal.append(&records[1]).unwrap();
        let err = journal.append(&records[2]).unwrap_err();
        assert!(err.to_string().contains("injected"));
        assert!(journal.crashed());
        // Every further operation fails.
        assert!(journal.append(&records[3]).is_err());
        assert!(journal.sync().is_err());
        drop(journal);
        let outcome = replay(&path).unwrap();
        // No seal yet: nothing is recovered, but the two records are valid.
        assert_eq!(outcome.sealed_records.len(), 0);
        assert_eq!(outcome.unsealed_records, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_and_torn_appends_are_invisible_after_replay() {
        for tag in ["short", "torn"] {
            for seed in 0..16u64 {
                let plan = match tag {
                    "short" => FaultPlan::short_append(4, seed),
                    _ => FaultPlan::torn_append(4, seed),
                };
                let path = temp_path(tag);
                let mut journal = Journal::create(&path, Some(plan)).unwrap();
                for record in sample_records() {
                    journal.append(&record).unwrap();
                }
                let tail = WalRecord::Batch {
                    col: 0,
                    writes: vec![(3, 77), (4, 78)],
                };
                assert!(journal.append(&tail).is_err());
                drop(journal);
                let outcome = replay(&path).unwrap();
                assert_eq!(
                    outcome.sealed_records,
                    sample_records(),
                    "{tag} seed {seed}: torn tail must not change the sealed prefix"
                );
                assert_eq!(outcome.sealed_epoch, Some(1));
                std::fs::remove_file(&path).unwrap();
            }
        }
    }

    #[test]
    fn fail_fsync_rolls_back_to_last_synced_length() {
        let path = temp_path("fail-fsync");
        let mut journal = Journal::create(&path, Some(FaultPlan::fail_fsync(1))).unwrap();
        let records = sample_records();
        // First two records are synced; the rest are lost with the fsync.
        journal.append(&records[0]).unwrap();
        journal.append(&records[1]).unwrap();
        journal.sync().unwrap();
        journal.append(&records[2]).unwrap();
        journal.append(&records[3]).unwrap();
        assert!(journal.sync().is_err());
        assert!(journal.crashed());
        drop(journal);
        let outcome = replay(&path).unwrap();
        // The unsynced batch + seal vanished: nothing is sealed, the two
        // synced records survive as an unsealed prefix.
        assert_eq!(outcome.sealed_records.len(), 0);
        assert_eq!(outcome.unsealed_records, 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn rewrite_compacts_and_open_append_continues() {
        let path = temp_path("rewrite");
        let mut journal = Journal::create(&path, None).unwrap();
        for record in sample_records() {
            journal.append(&record).unwrap();
        }
        journal.sync().unwrap();
        drop(journal);
        // Compact to a checkpoint: one AddColumn + one Seal.
        let checkpoint = vec![
            WalRecord::AddColumn {
                col: 0,
                values: vec![10, 99, 98],
            },
            WalRecord::Seal { epoch: 1 },
        ];
        rewrite(&path, &checkpoint).unwrap();
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.sealed_records, checkpoint);
        // Appends continue after the checkpoint.
        let mut journal = Journal::open_append(&path, None).unwrap();
        journal
            .append(&WalRecord::Batch {
                col: 0,
                writes: vec![(0, 1)],
            })
            .unwrap();
        journal.append(&WalRecord::Seal { epoch: 2 }).unwrap();
        journal.sync().unwrap();
        drop(journal);
        let outcome = replay(&path).unwrap();
        assert_eq!(outcome.sealed_records.len(), 4);
        assert_eq!(outcome.sealed_epoch, Some(2));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn every_short_append_cut_is_recoverable() {
        // Walk the cut point across the whole encoded record length by
        // sweeping seeds — replay must never fail, never see the torn
        // record, and always keep the sealed prefix.
        for seed in 0..64u64 {
            let path = temp_path("cutsweep");
            let mut journal =
                Journal::create(&path, Some(FaultPlan::short_append(1, seed))).unwrap();
            journal.append(&WalRecord::Seal { epoch: 7 }).unwrap();
            assert!(journal
                .append(&WalRecord::Batch {
                    col: 3,
                    writes: vec![(8, 9)],
                })
                .is_err());
            drop(journal);
            let outcome = replay(&path).unwrap();
            assert_eq!(outcome.sealed_records, vec![WalRecord::Seal { epoch: 7 }]);
            assert_eq!(outcome.sealed_epoch, Some(7));
            std::fs::remove_file(&path).unwrap();
        }
    }
}
