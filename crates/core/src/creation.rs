//! Optimized partial-view creation (paper §2.3).
//!
//! View creation happens *while* the source views are scanned: every
//! qualifying physical page is handed to a [`PageSink`], which materializes
//! the mapping of the new view. Two optimizations are supported, matching
//! the paper:
//!
//! 1. **Consecutive mapping** — consecutive qualifying physical pages are
//!    grouped into runs and mapped with a single `mmap()` call.
//! 2. **Concurrent mapping** — the actual mapping calls are executed by a
//!    dedicated mapping thread fed through a concurrent queue, overlapping
//!    mapping with scanning. The new view is only handed back (and can only
//!    be published to the view index) once the mapping thread has drained
//!    the queue, mirroring the paper's completion signal.

use std::sync::mpsc::{channel, Receiver, Sender};

use asv_storage::Column;
use asv_util::{split_ranges, Parallelism, Run, RunBuilder, ThreadPool};
use asv_vmem::{Backend, MapRequest, VmemError};

use crate::config::CreationOptions;

/// Receives qualifying physical pages during a scan and materializes the
/// mapping of the view under construction.
pub struct PageSink<'a, B: Backend> {
    mode: SinkMode<'a, B>,
    runs: RunBuilder,
    coalesce: bool,
    pages_added: usize,
}

enum SinkMode<'a, B: Backend> {
    /// Map synchronously on the scanning thread.
    Sync {
        backend: &'a B,
        store: &'a B::Store,
        view: B::View,
        next_slot: usize,
    },
    /// Send runs to the background mapping thread.
    Concurrent { tx: Sender<Run> },
}

impl<B: Backend> PageSink<'_, B> {
    /// Registers the next qualifying physical page (in scan order).
    pub fn add_page(&mut self, phys_page: u64) -> Result<(), VmemError> {
        self.pages_added += 1;
        if self.coalesce {
            if let Some(run) = self.runs.push(phys_page) {
                self.emit(run)?;
            }
            Ok(())
        } else {
            self.emit(Run {
                start: phys_page,
                len: 1,
            })
        }
    }

    /// Number of pages registered so far.
    pub fn pages_added(&self) -> usize {
        self.pages_added
    }

    fn emit(&mut self, run: Run) -> Result<(), VmemError> {
        match &mut self.mode {
            SinkMode::Sync {
                backend,
                store,
                view,
                next_slot,
            } => {
                backend.map_run(
                    store,
                    view,
                    MapRequest {
                        slot: *next_slot,
                        phys_page: run.start as usize,
                        len: run.len as usize,
                    },
                )?;
                *next_slot += run.len as usize;
                Ok(())
            }
            SinkMode::Concurrent { tx } => tx
                .send(run)
                .map_err(|_| VmemError::Unsupported("mapping thread terminated early")),
        }
    }

    fn flush(&mut self) -> Result<(), VmemError> {
        if let Some(run) = self.runs.finish() {
            self.emit(run)?;
        }
        Ok(())
    }
}

/// Runs the mapping loop of the background mapping thread.
fn mapping_thread_loop<B: Backend>(
    backend: &B,
    store: &B::Store,
    mut view: B::View,
    rx: Receiver<Run>,
) -> Result<B::View, VmemError> {
    let mut next_slot = 0usize;
    for run in rx {
        backend.map_run(
            store,
            &mut view,
            MapRequest {
                slot: next_slot,
                phys_page: run.start as usize,
                len: run.len as usize,
            },
        )?;
        next_slot += run.len as usize;
    }
    Ok(view)
}

/// Creates a new partial-view buffer over `column` while the caller scans
/// the source views.
///
/// The closure `scan` receives a [`PageSink`]; it must call
/// [`PageSink::add_page`] for every *qualifying* physical page it
/// encounters, in scan order, and may return an arbitrary result (typically
/// the accumulated query answer). The function returns the fully mapped view
/// buffer together with the closure's result.
///
/// Depending on `options`, pages are mapped one-by-one or coalesced into
/// runs, on the scanning thread or on a dedicated mapping thread.
pub fn create_while_scanning<B, T, F>(
    column: &Column<B>,
    options: &CreationOptions,
    scan: F,
) -> Result<(B::View, T), VmemError>
where
    B: Backend,
    F: FnOnce(&mut PageSink<'_, B>) -> Result<T, VmemError>,
{
    let backend = column.backend();
    let store = column.store();
    let view = column.reserve_partial_view()?;

    if options.concurrent_mapping {
        let (tx, rx) = channel::<Run>();
        std::thread::scope(|scope| {
            let mapper = scope.spawn(move || mapping_thread_loop(backend, store, view, rx));
            let mut sink = PageSink {
                mode: SinkMode::Concurrent { tx },
                runs: RunBuilder::new(),
                coalesce: options.coalesce_runs,
                pages_added: 0,
            };
            let scan_result = scan(&mut sink);
            let flush_result = sink.flush();
            // Close the queue so the mapping thread drains and terminates;
            // joining it is the "view is completely mapped" signal.
            drop(sink);
            let view = mapper
                .join()
                .map_err(|_| VmemError::Unsupported("mapping thread panicked"))??;
            flush_result?;
            Ok((view, scan_result?))
        })
    } else {
        let mut sink = PageSink {
            mode: SinkMode::Sync {
                backend,
                store,
                view,
                next_slot: 0,
            },
            runs: RunBuilder::new(),
            coalesce: options.coalesce_runs,
            pages_added: 0,
        };
        let scan_result = scan(&mut sink);
        sink.flush()?;
        let view = match sink.mode {
            SinkMode::Sync { view, .. } => view,
            SinkMode::Concurrent { .. } => unreachable!("sync sink"),
        };
        Ok((view, scan_result?))
    }
}

/// Builds a partial view for `range` by scanning the column's full view —
/// the non-adaptive "create a single partial view" operation used by the
/// micro-benchmarks (Figures 3 and 6) and by rebuild-from-scratch.
///
/// Returns the mapped buffer and the number of qualifying pages.
pub fn build_view_for_range<B: Backend>(
    column: &Column<B>,
    range: &asv_util::ValueRange,
    options: &CreationOptions,
) -> Result<(B::View, usize), VmemError> {
    build_view_for_range_with(column, range, options, Parallelism::Sequential)
}

/// Like [`build_view_for_range`], but with the qualifying-page detection
/// scan sharded across a fork-join pool.
///
/// With [`Parallelism::Sequential`] the behaviour (and mapping order) is
/// identical to [`build_view_for_range`]. With more than one worker, the
/// physical page range is split into balanced shards whose qualifying page
/// ids are detected concurrently and then fed to the sink in ascending page
/// order — the resulting view maps exactly the same pages.
pub fn build_view_for_range_with<B: Backend>(
    column: &Column<B>,
    range: &asv_util::ValueRange,
    options: &CreationOptions,
    parallelism: Parallelism,
) -> Result<(B::View, usize), VmemError> {
    let pool = ThreadPool::new(parallelism);
    let qualifies = |page_idx: usize| {
        column
            .page_ref(page_idx)
            .values()
            .iter()
            .any(|v| range.contains(*v))
    };
    let detected: Option<Vec<u64>> = if pool.workers() > 1 && column.num_pages() >= 2 {
        let per_shard = pool.scoped_map(
            split_ranges(column.num_pages(), pool.workers())
                .into_iter()
                .map(|pages| {
                    let qualifies = &qualifies;
                    move || {
                        pages
                            .filter(|&p| qualifies(p))
                            .map(|p| p as u64)
                            .collect::<Vec<u64>>()
                    }
                })
                .collect(),
        );
        Some(per_shard.concat())
    } else {
        None
    };
    let (view, pages) = create_while_scanning(column, options, |sink| match detected {
        Some(pages) => {
            for &page_id in &pages {
                sink.add_page(page_id)?;
            }
            Ok(pages.len())
        }
        None => {
            let mut qualifying = 0usize;
            for page_idx in 0..column.num_pages() {
                if qualifies(page_idx) {
                    sink.add_page(page_idx as u64)?;
                    qualifying += 1;
                }
            }
            Ok(qualifying)
        }
    })?;
    Ok((view, pages))
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_util::ValueRange;
    use asv_vmem::{MmapBackend, SimBackend, ViewBuffer, VALUES_PER_PAGE};

    /// Column with page p holding values p*1000 .. p*1000+VALUES_PER_PAGE.
    fn clustered_column<B: Backend>(backend: B, pages: usize) -> Column<B> {
        let values: Vec<u64> = (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect();
        Column::from_values(backend, &values).unwrap()
    }

    fn view_page_ids<B: Backend>(column: &Column<B>, view: &B::View) -> Vec<u64> {
        view.iter_pages()
            .map(|p| column.wrap_view_page(p).page_id())
            .collect()
    }

    fn check_all_variants<B: Backend>(backend: B) {
        let column = clustered_column(backend, 32);
        // Pages 4..=9 qualify for [4000, 9500].
        let range = ValueRange::new(4000, 9500);
        for options in [
            CreationOptions::NONE,
            CreationOptions::COALESCED,
            CreationOptions::CONCURRENT,
            CreationOptions::ALL,
        ] {
            let (view, qualifying) = build_view_for_range(&column, &range, &options).unwrap();
            assert_eq!(qualifying, 6, "options {options:?}");
            assert_eq!(view.mapped_pages(), 6, "options {options:?}");
            assert_eq!(
                view_page_ids(&column, &view),
                vec![4, 5, 6, 7, 8, 9],
                "options {options:?}"
            );
        }
    }

    #[test]
    fn all_creation_variants_agree_on_sim_backend() {
        check_all_variants(SimBackend::new());
    }

    #[test]
    fn all_creation_variants_agree_on_mmap_backend() {
        check_all_variants(MmapBackend::new());
    }

    #[test]
    fn scattered_qualifying_pages_map_in_scan_order() {
        let column = clustered_column(SimBackend::new(), 16);
        // Pages 2, 3 and 10 qualify.
        let ranges = [ValueRange::new(2000, 3500), ValueRange::new(10_100, 10_200)];
        let (view, _) = create_while_scanning(&column, &CreationOptions::ALL, |sink| {
            for page_idx in 0..column.num_pages() {
                let page = column.page_ref(page_idx);
                if page
                    .values()
                    .iter()
                    .any(|v| ranges.iter().any(|r| r.contains(*v)))
                {
                    sink.add_page(page_idx as u64)?;
                }
            }
            Ok(sink.pages_added())
        })
        .unwrap();
        assert_eq!(view_page_ids(&column, &view), vec![2, 3, 10]);
    }

    #[test]
    fn parallel_detection_builds_the_same_view() {
        let column = clustered_column(SimBackend::new(), 32);
        let range = ValueRange::new(4000, 9500);
        let (seq_view, seq_pages) = build_view_for_range_with(
            &column,
            &range,
            &CreationOptions::ALL,
            Parallelism::Sequential,
        )
        .unwrap();
        for threads in [2usize, 4] {
            let (par_view, par_pages) = build_view_for_range_with(
                &column,
                &range,
                &CreationOptions::ALL,
                Parallelism::Threads(threads),
            )
            .unwrap();
            assert_eq!(par_pages, seq_pages);
            assert_eq!(
                view_page_ids(&column, &par_view),
                view_page_ids(&column, &seq_view)
            );
        }
    }

    #[test]
    fn empty_scan_produces_empty_view() {
        let column = clustered_column(SimBackend::new(), 8);
        let (view, count) = build_view_for_range(
            &column,
            &ValueRange::new(900_000, 900_001),
            &CreationOptions::ALL,
        )
        .unwrap();
        assert_eq!(count, 0);
        assert_eq!(view.mapped_pages(), 0);
    }

    #[test]
    fn scan_closure_errors_propagate() {
        let column = clustered_column(SimBackend::new(), 4);
        let err = create_while_scanning::<_, (), _>(&column, &CreationOptions::NONE, |_| {
            Err(VmemError::Unsupported("injected failure"))
        });
        assert!(err.is_err());
        let err = create_while_scanning::<_, (), _>(&column, &CreationOptions::CONCURRENT, |_| {
            Err(VmemError::Unsupported("injected failure"))
        });
        assert!(err.is_err());
    }

    #[test]
    fn coalescing_reduces_map_calls_but_not_results() {
        // Verified indirectly: both variants produce identical views even
        // for a run pattern with alternating gaps.
        let column = clustered_column(SimBackend::new(), 20);
        let pick = |p: u64| p % 3 != 2; // pages 0,1,3,4,6,7,... qualify
        for options in [CreationOptions::NONE, CreationOptions::COALESCED] {
            let (view, _) = create_while_scanning(&column, &options, |sink| {
                for page_idx in 0..column.num_pages() as u64 {
                    if pick(page_idx) {
                        sink.add_page(page_idx)?;
                    }
                }
                Ok(())
            })
            .unwrap();
            let expected: Vec<u64> = (0..20u64).filter(|&p| pick(p)).collect();
            assert_eq!(view_page_ids(&column, &view), expected);
        }
    }
}
