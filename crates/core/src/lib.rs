//! The adaptive storage layer: virtual views, routing, adaptive maintenance.
//!
//! This crate is the paper's primary contribution. For each column it
//! maintains (paper §2):
//!
//! * (a) the physical column (owned by [`asv_storage::Column`]),
//! * (b) a set of virtual views — the full view plus adaptively created
//!   partial views ([`ViewSet`] / [`PartialView`]).
//!
//! On top of that it implements:
//!
//! * **query routing** to the most fitting view(s), in single-view and
//!   multi-view mode (paper §2.1, [`router`]),
//! * **adaptive partial-view creation** as a side-product of query
//!   processing, including the discard/replace retention policy
//!   (paper §2.2 / Listing 1, [`adaptive`]),
//! * **optimized view creation** with consecutive-run coalescing and a
//!   background mapping thread (paper §2.3, [`creation`]),
//! * **batched update alignment** of partial views driven by the
//!   materialized memory mapping (paper §2.4–2.5, [`updates`]),
//! * **background (epoch-handoff) alignment** that plans a batch's
//!   alignment on a worker thread while queries keep running against the
//!   pre-batch views, publishing the aligned set atomically by bumping the
//!   view-set generation ([`align`]),
//! * a **multi-column query planner** that orders the predicates of a
//!   conjunctive query by estimated result cardinality, drives the cheapest
//!   one through the adaptive path and evaluates the rest as semi-join
//!   probes over the surviving rows ([`plan`] / [`AdaptiveTable`]),
//! * a **concurrent serving layer** in which reader threads pin
//!   epoch-consistent snapshots (userspace RCU) and run full queries
//!   lock-free while one maintenance thread ingests writes and publishes
//!   re-aligned view epochs ([`serve`]).
//!
//! The entry points are [`AdaptiveColumn`], [`AdaptiveTable`] and
//! [`ServeTable`].

pub mod adaptive;
pub mod align;
pub mod config;
pub mod creation;
pub mod exec;
pub mod plan;
pub mod query;
pub mod router;
pub mod serve;
pub mod stats;
pub mod table;
pub mod updates;
pub mod view;
pub mod viewset;
pub mod wal;

pub use adaptive::AdaptiveColumn;
pub use align::{
    apply_plan, chunk_boundaries, compute_alignment_delta, plan_alignment, plan_alignment_chunked,
    snapshot_alignment, snapshot_alignment_delta, spawn_alignment, spawn_alignment_chunked,
    AlignmentDelta, AlignmentPlan, AlignmentSnapshot, ChunkedAlignmentPlan, DeltaWorkItem,
    PendingAlignment, PendingChunkedAlignment, ViewDepGraph, ViewOp, ViewPlan, WriteOverlay,
};
pub use config::{AdaptiveConfig, AlignChunking, CreationOptions, RoutingMode};
// Re-exported so downstream crates can configure the parallel execution
// layer without depending on asv-util directly.
pub use asv_util::{Parallelism, ThreadPool};
pub use creation::{build_view_for_range, build_view_for_range_with, create_while_scanning};
pub use plan::{
    merge_same_column, plan_conjunctive, CardinalityEstimate, ConjunctivePlan, MergedPredicate,
    PlanInput, PlanStep, PlannerConfig, PredicateEstimate, ProbeTracker, StepKind, ZoneStats,
};
pub use query::{QueryExecution, QueryOutcome, RangeQuery, ViewMaintenance};
pub use router::{route, RouteSelection, ViewId};
pub use serve::{
    writer_shard_of, AlignActivity, ColumnEpoch, ConjunctiveAnswer, DurabilityConfig, RangeAnswer,
    RecoveryInfo, ServeTable, Snapshot, TableEpoch, TableHandle, TableWriter, ViewMeta,
};
pub use stats::{
    ChunkPublishRecord, ChunkPublishStats, ConjunctiveRecord, ConjunctiveStats, QueryRecord,
    SequenceStats,
};
pub use table::{AdaptiveTable, ConjunctiveOutcome};
pub use updates::{
    align_views_after_updates, align_views_after_updates_with, rebuild_all_views,
    UpdateAlignmentStats,
};
pub use view::PartialView;
pub use viewset::ViewSet;
pub use wal::{FaultKind, FaultPlan, Journal, ReplayOutcome, WalRecord};
