//! Partial virtual views.
//!
//! A partial view `v[l,u]` maps exactly the physical pages of its column
//! that contain at least one value in `[l, u]`. Besides the mapped view
//! buffer, the paper keeps only minimal metadata per view: "we only
//! materialize the covered value range `[l_i, u_i]` and its size in number
//! of pages" (§2).

use asv_util::ValueRange;
use asv_vmem::{Backend, ViewBuffer};

/// A partial virtual view over one column.
pub struct PartialView<B: Backend> {
    id: u64,
    range: ValueRange,
    buffer: B::View,
}

impl<B: Backend> PartialView<B> {
    /// Wraps a mapped view buffer with its covered value range.
    pub fn new(id: u64, range: ValueRange, buffer: B::View) -> Self {
        Self { id, range, buffer }
    }

    /// A unique (per column) identifier, assigned by the [`crate::ViewSet`].
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The value range this view covers.
    pub fn range(&self) -> &ValueRange {
        &self.range
    }

    /// Number of physical pages the view indexes.
    pub fn num_pages(&self) -> usize {
        self.buffer.mapped_pages()
    }

    /// The underlying view buffer (for scanning).
    pub fn buffer(&self) -> &B::View {
        &self.buffer
    }

    /// Mutable access to the underlying view buffer (for update alignment).
    pub fn buffer_mut(&mut self) -> &mut B::View {
        &mut self.buffer
    }

    /// Returns `true` if this view can answer a query over `query_range`
    /// on its own (it fully covers the range).
    pub fn covers(&self, query_range: &ValueRange) -> bool {
        self.range.covers(query_range)
    }

    /// Returns `true` if this view's covered range is a subset of `other`'s.
    pub fn covers_subset_of(&self, other: &ValueRange) -> bool {
        self.range.is_subset_of(other)
    }

    /// Returns `true` if this view's covered range is a superset of
    /// `other`'s.
    pub fn covers_superset_of(&self, other: &ValueRange) -> bool {
        self.range.covers(other)
    }

    /// Replaces the covered range (used when a view is re-purposed during
    /// rebuilds; regular adaptive processing never mutates ranges).
    pub fn set_range(&mut self, range: ValueRange) {
        self.range = range;
    }

    /// Consumes the view, returning its buffer.
    pub fn into_buffer(self) -> B::View {
        self.buffer
    }
}

impl<B: Backend> std::fmt::Debug for PartialView<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartialView")
            .field("id", &self.id)
            .field("range", &self.range)
            .field("num_pages", &self.num_pages())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::{MapRequest, SimBackend};

    fn make_view(range: ValueRange, pages: &[usize]) -> PartialView<SimBackend> {
        let backend = SimBackend::new();
        let store = backend.create_store(64).unwrap();
        let mut buf = backend.reserve_view(&store, 64).unwrap();
        for (slot, &p) in pages.iter().enumerate() {
            backend
                .map_run(&store, &mut buf, MapRequest::single(slot, p))
                .unwrap();
        }
        PartialView::new(1, range, buf)
    }

    #[test]
    fn metadata_accessors() {
        let v = make_view(ValueRange::new(10, 50), &[3, 9, 17]);
        assert_eq!(v.id(), 1);
        assert_eq!(v.range(), &ValueRange::new(10, 50));
        assert_eq!(v.num_pages(), 3);
        assert_eq!(v.buffer().mapped_pages(), 3);
        assert!(format!("{v:?}").contains("num_pages"));
    }

    #[test]
    fn coverage_relations() {
        let v = make_view(ValueRange::new(10, 50), &[1]);
        assert!(v.covers(&ValueRange::new(20, 30)));
        assert!(v.covers(&ValueRange::new(10, 50)));
        assert!(!v.covers(&ValueRange::new(5, 30)));
        assert!(v.covers_subset_of(&ValueRange::new(0, 100)));
        assert!(!v.covers_subset_of(&ValueRange::new(20, 100)));
        assert!(v.covers_superset_of(&ValueRange::new(20, 30)));
        assert!(!v.covers_superset_of(&ValueRange::new(0, 30)));
    }

    #[test]
    fn range_can_be_replaced_and_buffer_extracted() {
        let mut v = make_view(ValueRange::new(10, 50), &[1, 2]);
        v.set_range(ValueRange::new(5, 60));
        assert_eq!(v.range(), &ValueRange::new(5, 60));
        let buf = v.into_buffer();
        assert_eq!(buf.mapped_pages(), 2);
    }
}
