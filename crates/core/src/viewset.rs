//! The per-column set of partial views (the "view index").
//!
//! The view set stores all partial views of one column and implements the
//! retention policy of Listing 1 (lines 21-32): a candidate view produced as
//! a side-product of query answering is either discarded, replaces an
//! existing view, or is inserted — bounded by the maximum view count.

use asv_util::ValueRange;
use asv_vmem::Backend;

use crate::align::ViewDepGraph;
use crate::query::ViewMaintenance;
use crate::view::PartialView;

/// The set of partial views of one column.
pub struct ViewSet<B: Backend> {
    partials: Vec<PartialView<B>>,
    /// Predicate → view interval index, kept in sync with `partials` at
    /// every mutation point so incremental alignment can narrow a write
    /// batch to the affected views without scanning the set.
    deps: ViewDepGraph,
    max_views: usize,
    next_id: u64,
    /// Once the view limit has been reached, view generation stops for good
    /// (paper §2.2), even if views are later removed.
    generation_stopped: bool,
    /// The view epoch: bumped every time an update alignment (or rebuild)
    /// publishes a re-aligned view set. Queries observe a single epoch for
    /// their whole execution; a background alignment leaves the epoch
    /// untouched until it is published.
    generation: u64,
}

impl<B: Backend> ViewSet<B> {
    /// Creates an empty view set with the given view limit.
    pub fn new(max_views: usize) -> Self {
        Self {
            partials: Vec::new(),
            deps: ViewDepGraph::new(),
            max_views,
            next_id: 0,
            generation_stopped: false,
            generation: 0,
        }
    }

    /// The current view epoch (number of published alignments/rebuilds).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Moves the set into the next view epoch. Called by the alignment /
    /// rebuild machinery when a re-aligned view set is published.
    pub(crate) fn bump_generation(&mut self) {
        self.generation += 1;
    }

    /// Number of partial views currently held.
    pub fn num_partial_views(&self) -> usize {
        self.partials.len()
    }

    /// Returns `true` if no partial views exist yet.
    pub fn is_empty(&self) -> bool {
        self.partials.is_empty()
    }

    /// The configured maximum number of partial views.
    pub fn max_views(&self) -> usize {
        self.max_views
    }

    /// Returns `true` if new partial views may still be generated.
    pub fn can_create_views(&self) -> bool {
        !self.generation_stopped && self.partials.len() < self.max_views
    }

    /// All partial views, in insertion order.
    pub fn partial_views(&self) -> &[PartialView<B>] {
        &self.partials
    }

    /// Mutable access to a partial view by position.
    pub fn partial_view_mut(&mut self, idx: usize) -> Option<&mut PartialView<B>> {
        self.partials.get_mut(idx)
    }

    /// A partial view by position.
    pub fn partial_view(&self, idx: usize) -> Option<&PartialView<B>> {
        self.partials.get(idx)
    }

    /// Iterates over `(position, view)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &PartialView<B>)> {
        self.partials.iter().enumerate()
    }

    /// Removes all partial views (used by rebuild-from-scratch).
    pub fn clear(&mut self) {
        self.partials.clear();
        self.deps.clear();
    }

    /// Inserts a view unconditionally (used by rebuilds and by tests); the
    /// view receives a fresh id.
    pub fn insert_unchecked(&mut self, range: ValueRange, buffer: B::View) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        self.partials.push(PartialView::new(id, range, buffer));
        self.deps.note_insert(id, range);
        id
    }

    /// The predicate → view dependency index, always in sync with the set.
    pub fn dep_graph(&self) -> &ViewDepGraph {
        &self.deps
    }

    /// Offers a candidate view (covered `range`, mapped `buffer` with
    /// `candidate_pages` pages) to the view index, applying the retention
    /// policy of Listing 1 lines 21-32.
    ///
    /// * The candidate must index strictly fewer pages than the full view
    ///   (`full_view_pages`), otherwise it is discarded.
    /// * If it covers a *subset* of an existing partial view while indexing
    ///   at least `existing - discard_tolerance` pages, it is discarded.
    /// * If it covers a *superset* of an existing partial view while
    ///   indexing at most `existing + replacement_tolerance` pages, it
    ///   replaces that view.
    /// * Otherwise it is inserted, provided the view limit has not been
    ///   reached; reaching the limit permanently stops view generation.
    #[allow(clippy::too_many_arguments)]
    pub fn offer_candidate(
        &mut self,
        range: ValueRange,
        buffer: B::View,
        candidate_pages: usize,
        full_view_pages: usize,
        discard_tolerance: usize,
        replacement_tolerance: usize,
    ) -> ViewMaintenance {
        if candidate_pages >= full_view_pages {
            return ViewMaintenance::DiscardedNotSmaller;
        }
        for existing in &mut self.partials {
            // Candidate ⊆ existing but not (sufficiently) smaller: reject.
            if range.is_subset_of(existing.range())
                && candidate_pages + discard_tolerance >= existing.num_pages()
            {
                return ViewMaintenance::DiscardedSubsumed;
            }
            // Candidate ⊇ existing and of similar size: replace.
            if range.covers(existing.range())
                && candidate_pages <= existing.num_pages() + replacement_tolerance
            {
                let id = self.next_id;
                self.next_id += 1;
                self.deps.note_remove(existing.id());
                self.deps.note_insert(id, range);
                *existing = PartialView::new(id, range, buffer);
                return ViewMaintenance::ReplacedExisting;
            }
        }
        if !self.can_create_views() {
            return ViewMaintenance::NotAttempted;
        }
        self.insert_unchecked(range, buffer);
        if self.partials.len() >= self.max_views {
            self.generation_stopped = true;
        }
        ViewMaintenance::Inserted
    }

    /// Total number of physical pages indexed across all partial views
    /// (pages shared between views are counted once per view).
    pub fn total_indexed_pages(&self) -> usize {
        self.partials.iter().map(|v| v.num_pages()).sum()
    }

    /// The partial view with the given id, if it still exists.
    pub fn find_by_id(&self, id: u64) -> Option<&PartialView<B>> {
        self.partials.iter().find(|v| v.id() == id)
    }
}

impl<B: Backend> std::fmt::Debug for ViewSet<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewSet")
            .field("num_partial_views", &self.partials.len())
            .field("max_views", &self.max_views)
            .field("generation_stopped", &self.generation_stopped)
            .field("generation", &self.generation)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_vmem::{MapRequest, PhysicalStore, SimBackend, SimStore, SimView};

    fn store() -> (SimBackend, SimStore) {
        let b = SimBackend::new();
        let s = b.create_store(100).unwrap();
        (b, s)
    }

    fn buffer(b: &SimBackend, s: &SimStore, pages: &[usize]) -> SimView {
        let mut v = b.reserve_view(s, s.num_pages()).unwrap();
        for (slot, &p) in pages.iter().enumerate() {
            b.map_run(s, &mut v, MapRequest::single(slot, p)).unwrap();
        }
        v
    }

    #[test]
    fn empty_set() {
        let set: ViewSet<SimBackend> = ViewSet::new(10);
        assert!(set.is_empty());
        assert_eq!(set.num_partial_views(), 0);
        assert_eq!(set.max_views(), 10);
        assert!(set.can_create_views());
        assert_eq!(set.total_indexed_pages(), 0);
        assert!(format!("{set:?}").contains("max_views"));
    }

    #[test]
    fn candidate_larger_than_full_view_is_discarded() {
        let (b, s) = store();
        let mut set: ViewSet<SimBackend> = ViewSet::new(10);
        let buf = buffer(&b, &s, &[0, 1, 2]);
        let m = set.offer_candidate(ValueRange::new(0, 10), buf, 100, 100, 0, 0);
        assert_eq!(m, ViewMaintenance::DiscardedNotSmaller);
        assert!(set.is_empty());
    }

    #[test]
    fn candidate_smaller_than_full_view_is_inserted() {
        let (b, s) = store();
        let mut set: ViewSet<SimBackend> = ViewSet::new(10);
        let buf = buffer(&b, &s, &[0, 1, 2]);
        let m = set.offer_candidate(ValueRange::new(0, 10), buf, 3, 100, 0, 0);
        assert_eq!(m, ViewMaintenance::Inserted);
        assert_eq!(set.num_partial_views(), 1);
        assert_eq!(set.partial_view(0).unwrap().num_pages(), 3);
        assert_eq!(set.total_indexed_pages(), 3);
        assert!(set.find_by_id(0).is_some());
    }

    #[test]
    fn subset_candidate_of_similar_size_is_discarded() {
        let (b, s) = store();
        let mut set: ViewSet<SimBackend> = ViewSet::new(10);
        set.insert_unchecked(ValueRange::new(0, 100), buffer(&b, &s, &[0, 1, 2, 3]));
        // Subset range, 4 pages >= 4 - 0: discard.
        let m = set.offer_candidate(
            ValueRange::new(10, 50),
            buffer(&b, &s, &[0, 1, 2, 3]),
            4,
            100,
            0,
            0,
        );
        assert_eq!(m, ViewMaintenance::DiscardedSubsumed);
        assert_eq!(set.num_partial_views(), 1);
    }

    #[test]
    fn subset_candidate_clearly_smaller_is_inserted() {
        let (b, s) = store();
        let mut set: ViewSet<SimBackend> = ViewSet::new(10);
        set.insert_unchecked(ValueRange::new(0, 100), buffer(&b, &s, &[0, 1, 2, 3]));
        // Subset range but indexes only 1 page < 4 - 0: useful, insert.
        let m = set.offer_candidate(ValueRange::new(10, 50), buffer(&b, &s, &[7]), 1, 100, 0, 0);
        assert_eq!(m, ViewMaintenance::Inserted);
        assert_eq!(set.num_partial_views(), 2);
    }

    #[test]
    fn discard_tolerance_widens_the_rejection_band() {
        let (b, s) = store();
        let mut set: ViewSet<SimBackend> = ViewSet::new(10);
        set.insert_unchecked(ValueRange::new(0, 100), buffer(&b, &s, &[0, 1, 2, 3]));
        // Candidate indexes 2 pages; with d = 2 this is within the band
        // (2 >= 4 - 2) and gets rejected even though it is smaller.
        let m = set.offer_candidate(
            ValueRange::new(10, 50),
            buffer(&b, &s, &[0, 1]),
            2,
            100,
            2,
            0,
        );
        assert_eq!(m, ViewMaintenance::DiscardedSubsumed);
    }

    #[test]
    fn superset_candidate_of_similar_size_replaces() {
        let (b, s) = store();
        let mut set: ViewSet<SimBackend> = ViewSet::new(10);
        set.insert_unchecked(ValueRange::new(10, 50), buffer(&b, &s, &[0, 1, 2]));
        let m = set.offer_candidate(
            ValueRange::new(0, 100),
            buffer(&b, &s, &[0, 1, 2]),
            3,
            100,
            0,
            0,
        );
        assert_eq!(m, ViewMaintenance::ReplacedExisting);
        assert_eq!(set.num_partial_views(), 1);
        assert_eq!(
            set.partial_view(0).unwrap().range(),
            &ValueRange::new(0, 100)
        );
    }

    #[test]
    fn superset_candidate_much_larger_is_inserted_not_replaced() {
        let (b, s) = store();
        let mut set: ViewSet<SimBackend> = ViewSet::new(10);
        set.insert_unchecked(ValueRange::new(10, 50), buffer(&b, &s, &[0]));
        // Superset but 5 pages > 1 + 0: not a replacement candidate.
        let m = set.offer_candidate(
            ValueRange::new(0, 100),
            buffer(&b, &s, &[0, 1, 2, 3, 4]),
            5,
            100,
            0,
            0,
        );
        assert_eq!(m, ViewMaintenance::Inserted);
        assert_eq!(set.num_partial_views(), 2);
    }

    #[test]
    fn replacement_tolerance_allows_slightly_larger_replacements() {
        let (b, s) = store();
        let mut set: ViewSet<SimBackend> = ViewSet::new(10);
        set.insert_unchecked(ValueRange::new(10, 50), buffer(&b, &s, &[0]));
        let m = set.offer_candidate(
            ValueRange::new(0, 100),
            buffer(&b, &s, &[0, 1, 2]),
            3,
            100,
            0,
            2,
        );
        assert_eq!(m, ViewMaintenance::ReplacedExisting);
        assert_eq!(set.num_partial_views(), 1);
        assert_eq!(set.partial_view(0).unwrap().num_pages(), 3);
    }

    #[test]
    fn view_limit_permanently_stops_generation() {
        let (b, s) = store();
        let mut set: ViewSet<SimBackend> = ViewSet::new(2);
        assert_eq!(
            set.offer_candidate(ValueRange::new(0, 10), buffer(&b, &s, &[0]), 1, 100, 0, 0),
            ViewMaintenance::Inserted
        );
        assert_eq!(
            set.offer_candidate(ValueRange::new(20, 30), buffer(&b, &s, &[1]), 1, 100, 0, 0),
            ViewMaintenance::Inserted
        );
        assert!(!set.can_create_views());
        // Limit reached: further unrelated candidates are not inserted.
        assert_eq!(
            set.offer_candidate(ValueRange::new(40, 60), buffer(&b, &s, &[2]), 1, 100, 0, 0),
            ViewMaintenance::NotAttempted
        );
        assert_eq!(set.num_partial_views(), 2);
        // Even after clearing, generation stays stopped (the paper stops
        // "altogether").
        set.clear();
        assert!(!set.can_create_views());
    }

    #[test]
    fn generation_starts_at_zero_and_bumps() {
        let mut set: ViewSet<SimBackend> = ViewSet::new(4);
        assert_eq!(set.generation(), 0);
        set.bump_generation();
        set.bump_generation();
        assert_eq!(set.generation(), 2);
        assert!(format!("{set:?}").contains("generation"));
    }

    #[test]
    fn replacement_still_happens_after_limit() {
        let (b, s) = store();
        let mut set: ViewSet<SimBackend> = ViewSet::new(1);
        set.offer_candidate(ValueRange::new(10, 50), buffer(&b, &s, &[0]), 1, 100, 0, 0);
        assert!(!set.can_create_views());
        // A superset candidate of similar size replaces the existing view
        // even though no *new* views may be created.
        let m = set.offer_candidate(ValueRange::new(0, 60), buffer(&b, &s, &[1]), 1, 100, 0, 0);
        assert_eq!(m, ViewMaintenance::ReplacedExisting);
    }
}
