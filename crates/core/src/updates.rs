//! Batched alignment of partial views after updates (paper §2.4–2.5).
//!
//! The update path works in two phases:
//!
//! 1. Updates are applied to the physical column through the storage layer
//!    (the "full view" write path); the partial views are left untouched and
//!    may temporarily index stale page sets.
//! 2. [`align_views_after_updates`] re-aligns every partial view with a
//!    whole *batch* of update records at once: the batch is reduced to the
//!    last write per row, grouped by modified physical page (in ascending
//!    page order, so slot assignments are deterministic), and each page
//!    is added to / removed from each view according to the rules of §2.4.
//!    The current slot ↔ page mapping of each view is obtained once per
//!    batch from the memory-mapping introspection of the backend
//!    (`/proc/self/maps` on the mmap backend, §2.5) and maintained in
//!    user-space while pages are added and removed.
//!
//! The synchronous entry points here run the three alignment phases of
//! [`crate::align`] (snapshot → plan → publish) back-to-back; the same
//! phases power the background (epoch-handoff) alignment of
//! [`crate::AdaptiveColumn::align_views_async`], so both paths produce
//! identical view layouts by construction.

use std::time::Duration;

use asv_storage::{Column, Update};
use asv_util::{Parallelism, Timer};
use asv_vmem::{Backend, VmemError};

use crate::align::{apply_plan, plan_alignment, snapshot_alignment};
use crate::config::CreationOptions;
use crate::creation::build_view_for_range;
use crate::viewset::ViewSet;

/// Measurements of one batched alignment run (the quantities plotted in
/// Figure 7).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateAlignmentStats {
    /// Number of raw update records in the batch.
    pub batch_size: usize,
    /// Number of records after last-write-wins deduplication.
    pub deduped_size: usize,
    /// Time spent materializing the alignment snapshot: the view mappings
    /// (parsing `/proc/self/maps` on the mmap backend) plus the copies of
    /// the updated pages that may need re-inspection.
    pub parse_time: Duration,
    /// Time spent deciding and executing page additions/removals.
    pub align_time: Duration,
    /// Number of `(view, page)` additions: physical pages newly mapped into
    /// a partial view. A page entering several views counts once per view.
    pub pages_added: usize,
    /// Number of `(view, page)` removals: physical pages unmapped from a
    /// partial view. A page leaving several views counts once per view.
    pub pages_removed: usize,
}

impl UpdateAlignmentStats {
    /// Total alignment time (parse + align).
    pub fn total_time(&self) -> Duration {
        self.parse_time + self.align_time
    }

    /// Folds another run's measurements into this one, field-wise. Used to
    /// aggregate the per-chunk stats of a chunked alignment round (and the
    /// per-round stats of a queue flush) into one record.
    pub fn absorb(&mut self, other: &UpdateAlignmentStats) {
        self.batch_size += other.batch_size;
        self.deduped_size += other.deduped_size;
        self.parse_time += other.parse_time;
        self.align_time += other.align_time;
        self.pages_added += other.pages_added;
        self.pages_removed += other.pages_removed;
    }
}

/// Aligns all partial views of `views` with an *already applied* batch of
/// updates on `column`.
///
/// The batch must contain the update records produced when the writes were
/// applied (old and new value per row); the physical column must already
/// reflect the new values. Pages are processed in ascending page-id order,
/// so repeated runs of the same batch produce identical slot ↔ page
/// layouts.
pub fn align_views_after_updates<B: Backend>(
    column: &Column<B>,
    views: &mut ViewSet<B>,
    batch: &[Update],
) -> Result<UpdateAlignmentStats, VmemError> {
    align_views_after_updates_with(column, views, batch, Parallelism::Sequential)
}

/// [`align_views_after_updates`] with an explicit degree of parallelism:
/// the independent per-view planning work is fork-joined across a pool of
/// `parallelism` workers (the buffer manipulations are applied on the
/// calling thread afterwards).
pub fn align_views_after_updates_with<B: Backend>(
    column: &Column<B>,
    views: &mut ViewSet<B>,
    batch: &[Update],
    parallelism: Parallelism,
) -> Result<UpdateAlignmentStats, VmemError> {
    if batch.is_empty() || views.is_empty() {
        return Ok(UpdateAlignmentStats {
            batch_size: batch.len(),
            ..Default::default()
        });
    }
    let snapshot = snapshot_alignment(column, views, batch)?;
    let plan = plan_alignment(&snapshot, parallelism);
    apply_plan(column, views, &plan)
}

/// Rebuilds every partial view from scratch by re-scanning the column — the
/// baseline Figure 7 compares batched alignment against. Returns the total
/// wall-clock time of the rebuild.
pub fn rebuild_all_views<B: Backend>(
    column: &Column<B>,
    views: &mut ViewSet<B>,
    options: &CreationOptions,
) -> Result<Duration, VmemError> {
    let timer = Timer::start();
    for idx in 0..views.num_partial_views() {
        let range = *views
            .partial_view(idx)
            .expect("index within bounds")
            .range();
        let (buffer, _pages) = build_view_for_range(column, &range, options)?;
        let view = views.partial_view_mut(idx).expect("index within bounds");
        *view.buffer_mut() = buffer;
    }
    views.bump_generation();
    Ok(timer.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use asv_util::ValueRange;
    use asv_vmem::{MmapBackend, SimBackend, VALUES_PER_PAGE};

    /// Clustered data: page p holds values in [p*1000, p*1000 + 510].
    fn clustered_values(pages: usize) -> Vec<u64> {
        (0..pages * VALUES_PER_PAGE)
            .map(|i| ((i / VALUES_PER_PAGE) * 1000 + i % VALUES_PER_PAGE) as u64)
            .collect()
    }

    /// Builds a column plus one partial view for `range`.
    fn column_with_view<B: Backend>(
        backend: B,
        pages: usize,
        range: ValueRange,
    ) -> (Column<B>, ViewSet<B>) {
        let column = Column::from_values(backend, &clustered_values(pages)).unwrap();
        let mut views = ViewSet::new(10);
        let (buffer, _) = build_view_for_range(&column, &range, &CreationOptions::ALL).unwrap();
        views.insert_unchecked(range, buffer);
        (column, views)
    }

    /// The set of physical pages a view *should* index for its range.
    fn expected_pages<B: Backend>(column: &Column<B>, range: &ValueRange) -> Vec<usize> {
        (0..column.num_pages())
            .filter(|&p| {
                column
                    .page_ref(p)
                    .values()
                    .iter()
                    .any(|v| range.contains(*v))
            })
            .collect()
    }

    /// The set of physical pages a view currently indexes.
    fn actual_pages<B: Backend>(column: &Column<B>, views: &ViewSet<B>, idx: usize) -> Vec<usize> {
        let view = views.partial_view(idx).unwrap();
        let table = column
            .backend()
            .mapping_table(column.store(), view.buffer())
            .unwrap();
        table.phys_pages_sorted()
    }

    fn check_alignment_adds_pages<B: Backend>(backend: B) {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, mut views) = column_with_view(backend, 32, range);
        assert_eq!(views.partial_view(0).unwrap().num_pages(), 5);
        // Write a qualifying value into a page far outside the view
        // (page 20) and a non-qualifying value into another (page 25).
        let updates =
            column.write_batch(&[(20 * VALUES_PER_PAGE + 3, 6_000), (25 * VALUES_PER_PAGE, 1)]);
        let stats = align_views_after_updates(&column, &mut views, &updates).unwrap();
        assert_eq!(stats.pages_added, 1);
        assert_eq!(stats.pages_removed, 0);
        assert_eq!(stats.batch_size, 2);
        assert_eq!(stats.deduped_size, 2);
        assert!(stats.total_time() >= stats.parse_time);
        assert_eq!(
            actual_pages(&column, &views, 0),
            expected_pages(&column, &range)
        );
    }

    #[test]
    fn alignment_adds_pages_sim() {
        check_alignment_adds_pages(SimBackend::new());
    }

    #[test]
    fn alignment_adds_pages_mmap() {
        check_alignment_adds_pages(MmapBackend::new());
    }

    fn check_alignment_removes_pages<B: Backend>(backend: B) {
        let range = ValueRange::new(5_000, 5_510);
        let (mut column, mut views) = column_with_view(backend, 16, range);
        // Only page 5 qualifies initially.
        assert_eq!(actual_pages(&column, &views, 0), vec![5]);
        // Overwrite *all* values of page 5 with out-of-range values.
        let writes: Vec<(usize, u64)> = (0..VALUES_PER_PAGE)
            .map(|slot| (5 * VALUES_PER_PAGE + slot, 100_000 + slot as u64))
            .collect();
        let updates = column.write_batch(&writes);
        let stats = align_views_after_updates(&column, &mut views, &updates).unwrap();
        assert_eq!(stats.pages_removed, 1);
        assert_eq!(stats.pages_added, 0);
        assert!(actual_pages(&column, &views, 0).is_empty());
        assert_eq!(views.partial_view(0).unwrap().num_pages(), 0);
    }

    #[test]
    fn alignment_removes_pages_sim() {
        check_alignment_removes_pages(SimBackend::new());
    }

    #[test]
    fn alignment_removes_pages_mmap() {
        check_alignment_removes_pages(MmapBackend::new());
    }

    #[test]
    fn page_with_other_qualifying_values_is_kept() {
        let range = ValueRange::new(5_000, 5_510);
        let (mut column, mut views) = column_with_view(SimBackend::new(), 16, range);
        // Overwrite a single value of page 5 with an out-of-range value:
        // the page still holds other qualifying values and must stay.
        let updates = column.write_batch(&[(5 * VALUES_PER_PAGE, 999_999)]);
        let stats = align_views_after_updates(&column, &mut views, &updates).unwrap();
        assert_eq!(stats.pages_removed, 0);
        assert_eq!(actual_pages(&column, &views, 0), vec![5]);
    }

    #[test]
    fn irrelevant_updates_do_not_touch_the_view() {
        let range = ValueRange::new(5_000, 5_510);
        let (mut column, mut views) = column_with_view(SimBackend::new(), 16, range);
        // Update on an indexed page, but neither old nor new value are in
        // the view's range (page 5 also only keeps its other values).
        // Use page 9 (not indexed): old 9_000, new 900_000 — both outside.
        let updates = column.write_batch(&[(9 * VALUES_PER_PAGE, 900_000)]);
        let stats = align_views_after_updates(&column, &mut views, &updates).unwrap();
        assert_eq!(stats.pages_added, 0);
        assert_eq!(stats.pages_removed, 0);
        assert_eq!(actual_pages(&column, &views, 0), vec![5]);
    }

    #[test]
    fn last_write_wins_determines_membership() {
        let range = ValueRange::new(5_000, 5_510);
        let (mut column, mut views) = column_with_view(SimBackend::new(), 16, range);
        let row = 10 * VALUES_PER_PAGE;
        // First write moves the row into the range, the second one moves it
        // back out — after deduplication the page must not be added.
        let mut updates = Vec::new();
        updates.extend(column.write_batch(&[(row, 5_100)]));
        updates.extend(column.write_batch(&[(row, 700_000)]));
        let stats = align_views_after_updates(&column, &mut views, &updates).unwrap();
        assert_eq!(stats.deduped_size, 1);
        assert_eq!(stats.pages_added, 0);
        assert_eq!(actual_pages(&column, &views, 0), vec![5]);
    }

    #[test]
    fn alignment_matches_rebuild_for_random_batches() {
        // Property-style check with a deterministic pseudo-random sequence:
        // after alignment, every view indexes exactly the pages a rebuild
        // would produce.
        let ranges = [
            ValueRange::new(2_000, 4_500),
            ValueRange::new(7_000, 12_510),
            ValueRange::new(20_000, 20_200),
        ];
        let mut column = Column::from_values(SimBackend::new(), &clustered_values(32)).unwrap();
        let mut views = ViewSet::new(10);
        for r in &ranges {
            let (buffer, _) = build_view_for_range(&column, r, &CreationOptions::ALL).unwrap();
            views.insert_unchecked(*r, buffer);
        }
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let writes: Vec<(usize, u64)> = (0..500)
            .map(|_| {
                let row = (next() % (32 * VALUES_PER_PAGE as u64)) as usize;
                let value = next() % 33_000;
                (row, value)
            })
            .collect();
        let updates = column.write_batch(&writes);
        align_views_after_updates(&column, &mut views, &updates).unwrap();
        for (i, r) in ranges.iter().enumerate() {
            assert_eq!(
                actual_pages(&column, &views, i),
                expected_pages(&column, r),
                "view {i} misaligned"
            );
        }
    }

    /// The slot → page layout of a view, in slot order.
    fn slot_layout<B: Backend>(column: &Column<B>, views: &ViewSet<B>, idx: usize) -> Vec<usize> {
        let view = views.partial_view(idx).unwrap();
        let table = column
            .backend()
            .mapping_table(column.store(), view.buffer())
            .unwrap();
        (0..view.num_pages())
            .map(|slot| table.phys_for_slot(slot).expect("dense mapped prefix"))
            .collect()
    }

    /// Regression test for the `HashMap`-iteration-order bug: case-(1) page
    /// additions must land in identical slots across repeated runs of the
    /// same batch, and in ascending page order.
    fn check_alignment_is_deterministic<B: Backend>(make_backend: impl Fn() -> B) {
        let range = ValueRange::new(5_000, 9_400);
        // Write a qualifying value into many previously unmapped pages so a
        // nondeterministic iteration order would almost surely differ.
        let writes: Vec<(usize, u64)> = (10..30)
            .map(|p| (p * VALUES_PER_PAGE + p, 6_000 + p as u64))
            .collect();
        let mut layouts = Vec::new();
        for _ in 0..3 {
            let (mut column, mut views) = column_with_view(make_backend(), 32, range);
            let updates = column.write_batch(&writes);
            let stats = align_views_after_updates(&column, &mut views, &updates).unwrap();
            assert_eq!(stats.pages_added, 20);
            layouts.push(slot_layout(&column, &views, 0));
        }
        assert_eq!(layouts[0], layouts[1], "identical batches, identical slots");
        assert_eq!(layouts[1], layouts[2], "identical batches, identical slots");
        // Pages 5..=9 qualified initially; the additions follow in
        // ascending page order.
        let expected: Vec<usize> = (5..10).chain(10..30).collect();
        assert_eq!(layouts[0], expected);
    }

    #[test]
    fn alignment_is_deterministic_sim() {
        check_alignment_is_deterministic(SimBackend::new);
    }

    #[test]
    fn alignment_is_deterministic_mmap() {
        check_alignment_is_deterministic(MmapBackend::new);
    }

    #[test]
    fn stats_count_view_page_pairs_not_distinct_pages() {
        // Two overlapping views both index page 5; removing / adding one
        // physical page therefore counts once per affected view.
        let ranges = [ValueRange::new(5_000, 5_510), ValueRange::new(4_000, 6_000)];
        let mut column = Column::from_values(SimBackend::new(), &clustered_values(16)).unwrap();
        let mut views = ViewSet::new(10);
        for r in &ranges {
            let (buffer, _) = build_view_for_range(&column, r, &CreationOptions::ALL).unwrap();
            views.insert_unchecked(*r, buffer);
        }
        assert!(actual_pages(&column, &views, 0).contains(&5));
        assert!(actual_pages(&column, &views, 1).contains(&5));
        // Overwrite all of page 5 with values qualifying for neither view:
        // one physical page leaves two views → pages_removed == 2.
        let writes: Vec<(usize, u64)> = (0..VALUES_PER_PAGE)
            .map(|slot| (5 * VALUES_PER_PAGE + slot, 900_000 + slot as u64))
            .collect();
        let updates = column.write_batch(&writes);
        let stats = align_views_after_updates(&column, &mut views, &updates).unwrap();
        assert_eq!(stats.pages_removed, 2, "one page, two views, two removals");
        // And symmetrically: moving one row of page 12 into both ranges
        // adds the same physical page to both views → pages_added == 2.
        let updates = column.write_batch(&[(12 * VALUES_PER_PAGE, 5_100)]);
        let stats = align_views_after_updates(&column, &mut views, &updates).unwrap();
        assert_eq!(stats.pages_added, 2, "one page, two views, two additions");
    }

    #[test]
    fn sync_alignment_bumps_the_view_generation() {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, mut views) = column_with_view(SimBackend::new(), 32, range);
        assert_eq!(views.generation(), 0);
        let updates = column.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        align_views_after_updates(&column, &mut views, &updates).unwrap();
        assert_eq!(views.generation(), 1);
        // Rebuilds are epoch changes, too.
        rebuild_all_views(&column, &mut views, &CreationOptions::ALL).unwrap();
        assert_eq!(views.generation(), 2);
    }

    #[test]
    fn parallel_sync_alignment_matches_sequential() {
        let range = ValueRange::new(5_000, 9_400);
        let writes: Vec<(usize, u64)> = (10..30)
            .map(|p| (p * VALUES_PER_PAGE + p, 6_000 + p as u64))
            .collect();
        let (mut seq_col, mut seq_views) = column_with_view(SimBackend::new(), 32, range);
        let seq_updates = seq_col.write_batch(&writes);
        let seq_stats = align_views_after_updates(&seq_col, &mut seq_views, &seq_updates).unwrap();
        let (mut par_col, mut par_views) = column_with_view(SimBackend::new(), 32, range);
        let par_updates = par_col.write_batch(&writes);
        let par_stats = align_views_after_updates_with(
            &par_col,
            &mut par_views,
            &par_updates,
            asv_util::Parallelism::Threads(4),
        )
        .unwrap();
        assert_eq!(seq_stats.pages_added, par_stats.pages_added);
        assert_eq!(seq_stats.pages_removed, par_stats.pages_removed);
        assert_eq!(
            slot_layout(&seq_col, &seq_views, 0),
            slot_layout(&par_col, &par_views, 0)
        );
    }

    #[test]
    fn empty_batch_and_empty_view_set_are_noops() {
        let range = ValueRange::new(5_000, 9_400);
        let (column, mut views) = column_with_view(SimBackend::new(), 16, range);
        let stats = align_views_after_updates(&column, &mut views, &[]).unwrap();
        assert_eq!(stats, UpdateAlignmentStats::default());
        let column2 = Column::from_values(SimBackend::new(), &clustered_values(4)).unwrap();
        let mut empty: ViewSet<SimBackend> = ViewSet::new(4);
        let stats =
            align_views_after_updates(&column2, &mut empty, &[Update::new(0, 0, 1)]).unwrap();
        assert_eq!(stats.pages_added, 0);
    }

    #[test]
    fn rebuild_restores_correct_page_sets() {
        let range = ValueRange::new(5_000, 9_400);
        let (mut column, mut views) = column_with_view(SimBackend::new(), 32, range);
        // Make the view stale on purpose (do not align).
        column.write_batch(&[(20 * VALUES_PER_PAGE, 6_000)]);
        let elapsed = rebuild_all_views(&column, &mut views, &CreationOptions::ALL).unwrap();
        assert!(elapsed.as_nanos() > 0);
        assert_eq!(
            actual_pages(&column, &views, 0),
            expected_pages(&column, &range)
        );
    }
}
