//! A runtime-selectable rewiring backend.
//!
//! The upper layers are generic over [`Backend`], which is ideal for tests
//! and for monomorphized hot loops — but the experiment drivers, examples
//! and the `experiments` binary need to pick the backend *at runtime*
//! (`--backend sim|mmap`) without duplicating every code path per backend.
//! [`AnyBackend`] closes that gap: an enum over the available backends that
//! itself implements [`Backend`] by delegating per variant, the same
//! sim-vs-real split systems like Virtuoso or the Virtual Block Interface
//! use to keep VM research runnable off one specific kernel.
//!
//! On Linux (with the default `mmap` feature) both variants exist and
//! [`AnyBackend::default_backend`] picks the real rewiring backend; on every
//! other platform only the simulation variant is compiled and selected.
//!
//! Mixing variants — e.g. passing a store created by the sim variant to the
//! mmap variant — is a programming error and reported as
//! [`VmemError::Unsupported`].

use crate::backend::{Backend, MapRequest, PhysicalStore, ViewBuffer};
use crate::error::Result;
#[cfg(all(feature = "mmap", target_os = "linux"))]
use crate::error::VmemError;
#[cfg(all(feature = "mmap", target_os = "linux"))]
use crate::file::{FileBackend, FileStore};
use crate::maps::MappingTable;
#[cfg(all(feature = "mmap", target_os = "linux"))]
use crate::mmap::{MmapBackend, MmapStore, MmapView};
use crate::sim::{SimBackend, SimStore, SimView};

/// Error used whenever a store/view of one variant meets a backend of
/// another. With a single compiled variant no mismatch can occur.
#[cfg(all(feature = "mmap", target_os = "linux"))]
const MISMATCH: VmemError =
    VmemError::Unsupported("store/view belongs to a different AnyBackend variant");

/// A rewiring backend selected at runtime.
#[derive(Clone, Debug)]
pub enum AnyBackend {
    /// The portable, deterministic simulation backend.
    Sim(SimBackend),
    /// The real memory-rewiring backend (Linux only).
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    Mmap(MmapBackend),
    /// The durable file-backed rewiring backend (Linux only).
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    File(FileBackend),
}

impl AnyBackend {
    /// The simulation backend (available on every platform).
    pub fn sim() -> Self {
        AnyBackend::Sim(SimBackend::new())
    }

    /// The real mmap backend.
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    pub fn mmap() -> Self {
        AnyBackend::Mmap(MmapBackend::new())
    }

    /// The durable file-backed backend, storing under a process-unique
    /// temp directory (see [`FileBackend::temp`]).
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    pub fn file() -> Self {
        AnyBackend::File(FileBackend::temp())
    }

    /// The durable file-backed backend, storing under `dir`.
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    pub fn file_in(dir: impl Into<std::path::PathBuf>) -> Self {
        AnyBackend::File(FileBackend::with_dir(dir))
    }

    /// The preferred backend of this platform: real memory rewiring where
    /// it exists (Linux), the simulation everywhere else.
    pub fn default_backend() -> Self {
        #[cfg(all(feature = "mmap", target_os = "linux"))]
        {
            Self::mmap()
        }
        #[cfg(not(all(feature = "mmap", target_os = "linux")))]
        {
            Self::sim()
        }
    }

    /// Looks up a backend by its [`Backend::name`]
    /// (`"sim"` / `"mmap"` / `"file"`).
    ///
    /// Returns `None` for unknown names and for backends not available on
    /// this platform (e.g. `"mmap"` and `"file"` off Linux).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sim" => Some(Self::sim()),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            "mmap" => Some(Self::mmap()),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            "file" => Some(Self::file()),
            _ => None,
        }
    }

    /// Resolves an optional backend name — e.g. the first CLI argument of
    /// an example or tool — to a backend: `None` selects the platform
    /// default, `Some(name)` must be one of [`AnyBackend::available_names`].
    ///
    /// The error is a ready-to-print message naming the valid choices.
    pub fn from_optional_name(name: Option<&str>) -> std::result::Result<Self, String> {
        match name {
            None => Ok(Self::default_backend()),
            Some(n) => Self::from_name(n).ok_or_else(|| {
                format!(
                    "unknown backend '{n}' (available: {})",
                    Self::available_names().join(", ")
                )
            }),
        }
    }

    /// Reads the backend choice from the process's first CLI argument —
    /// the convention of this workspace's examples: no argument selects
    /// the platform default, an unknown name panics with a message
    /// listing the valid choices.
    pub fn from_cli_arg() -> Self {
        let arg = std::env::args().nth(1);
        Self::from_optional_name(arg.as_deref()).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Names accepted by [`AnyBackend::from_name`] on this platform.
    pub fn available_names() -> &'static [&'static str] {
        #[cfg(all(feature = "mmap", target_os = "linux"))]
        {
            &["sim", "mmap", "file"]
        }
        #[cfg(not(all(feature = "mmap", target_os = "linux")))]
        {
            &["sim"]
        }
    }
}

impl Default for AnyBackend {
    fn default() -> Self {
        Self::default_backend()
    }
}

/// A physical store created by an [`AnyBackend`].
pub enum AnyStore {
    /// Store of the simulation variant.
    Sim(SimStore),
    /// Store of the mmap variant.
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    Mmap(MmapStore),
    /// Store of the file variant.
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    File(FileStore),
}

impl AnyStore {
    /// The durable [`FileStore`] inside, if this store belongs to the file
    /// variant.
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    pub fn as_file(&self) -> Option<&FileStore> {
        match self {
            AnyStore::File(s) => Some(s),
            _ => None,
        }
    }

    /// Synchronously flushes the store to stable storage where the backend
    /// is durable (`msync` + `fsync` on the file variant); a no-op on
    /// memory-only variants.
    pub fn sync_all(&self) -> Result<()> {
        #[cfg(all(feature = "mmap", target_os = "linux"))]
        if let AnyStore::File(s) = self {
            return s.sync_all();
        }
        Ok(())
    }

    /// Flushes a run of pages to stable storage where the backend is
    /// durable (`msync(MS_SYNC)` on the file variant); a no-op elsewhere.
    pub fn flush_pages(&self, first_page: usize, len: usize) -> Result<()> {
        #[cfg(all(feature = "mmap", target_os = "linux"))]
        if let AnyStore::File(s) = self {
            return s.flush_pages(first_page, len);
        }
        let _ = (first_page, len);
        Ok(())
    }
}

impl PhysicalStore for AnyStore {
    fn num_pages(&self) -> usize {
        match self {
            AnyStore::Sim(s) => s.num_pages(),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyStore::Mmap(s) => s.num_pages(),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyStore::File(s) => s.num_pages(),
        }
    }

    fn page(&self, phys_page: usize) -> &[u64] {
        match self {
            AnyStore::Sim(s) => s.page(phys_page),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyStore::Mmap(s) => s.page(phys_page),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyStore::File(s) => s.page(phys_page),
        }
    }

    fn page_mut(&mut self, phys_page: usize) -> &mut [u64] {
        match self {
            AnyStore::Sim(s) => s.page_mut(phys_page),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyStore::Mmap(s) => s.page_mut(phys_page),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyStore::File(s) => s.page_mut(phys_page),
        }
    }
}

/// A view buffer created by an [`AnyBackend`].
pub enum AnyView {
    /// View of the simulation variant.
    Sim(SimView),
    /// View of the mmap variant.
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    Mmap(MmapView),
    /// View of the file variant (file-backed stores share the mmap view
    /// type — views are process-local virtual memory either way).
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    File(MmapView),
}

impl ViewBuffer for AnyView {
    fn capacity_pages(&self) -> usize {
        match self {
            AnyView::Sim(v) => v.capacity_pages(),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyView::Mmap(v) | AnyView::File(v) => v.capacity_pages(),
        }
    }

    fn mapped_pages(&self) -> usize {
        match self {
            AnyView::Sim(v) => v.mapped_pages(),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyView::Mmap(v) | AnyView::File(v) => v.mapped_pages(),
        }
    }

    fn page(&self, slot: usize) -> &[u64] {
        match self {
            AnyView::Sim(v) => v.page(slot),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyView::Mmap(v) | AnyView::File(v) => v.page(slot),
        }
    }
}

impl Backend for AnyBackend {
    type Store = AnyStore;
    type View = AnyView;

    fn name(&self) -> &'static str {
        match self {
            AnyBackend::Sim(b) => b.name(),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyBackend::Mmap(b) => b.name(),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyBackend::File(b) => b.name(),
        }
    }

    fn create_store(&self, num_pages: usize) -> Result<AnyStore> {
        match self {
            AnyBackend::Sim(b) => Ok(AnyStore::Sim(b.create_store(num_pages)?)),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyBackend::Mmap(b) => Ok(AnyStore::Mmap(b.create_store(num_pages)?)),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            AnyBackend::File(b) => Ok(AnyStore::File(b.create_store(num_pages)?)),
        }
    }

    fn reserve_view(&self, store: &AnyStore, capacity_pages: usize) -> Result<AnyView> {
        match (self, store) {
            (AnyBackend::Sim(b), AnyStore::Sim(s)) => {
                Ok(AnyView::Sim(b.reserve_view(s, capacity_pages)?))
            }
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            (AnyBackend::Mmap(b), AnyStore::Mmap(s)) => {
                Ok(AnyView::Mmap(b.reserve_view(s, capacity_pages)?))
            }
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            (AnyBackend::File(b), AnyStore::File(s)) => {
                Ok(AnyView::File(b.reserve_view(s, capacity_pages)?))
            }
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            _ => Err(MISMATCH),
        }
    }

    fn map_run(&self, store: &AnyStore, view: &mut AnyView, req: MapRequest) -> Result<()> {
        match (self, store, view) {
            (AnyBackend::Sim(b), AnyStore::Sim(s), AnyView::Sim(v)) => b.map_run(s, v, req),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            (AnyBackend::Mmap(b), AnyStore::Mmap(s), AnyView::Mmap(v)) => b.map_run(s, v, req),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            (AnyBackend::File(b), AnyStore::File(s), AnyView::File(v)) => b.map_run(s, v, req),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            _ => Err(MISMATCH),
        }
    }

    fn truncate_view(&self, view: &mut AnyView, new_mapped_pages: usize) -> Result<()> {
        match (self, view) {
            (AnyBackend::Sim(b), AnyView::Sim(v)) => b.truncate_view(v, new_mapped_pages),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            (AnyBackend::Mmap(b), AnyView::Mmap(v)) => b.truncate_view(v, new_mapped_pages),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            (AnyBackend::File(b), AnyView::File(v)) => b.truncate_view(v, new_mapped_pages),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            _ => Err(MISMATCH),
        }
    }

    fn mapping_table(&self, store: &AnyStore, view: &AnyView) -> Result<MappingTable> {
        match (self, store, view) {
            (AnyBackend::Sim(b), AnyStore::Sim(s), AnyView::Sim(v)) => b.mapping_table(s, v),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            (AnyBackend::Mmap(b), AnyStore::Mmap(s), AnyView::Mmap(v)) => b.mapping_table(s, v),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            (AnyBackend::File(b), AnyStore::File(s), AnyView::File(v)) => b.mapping_table(s, v),
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            _ => Err(MISMATCH),
        }
    }

    fn mapping_tables(&self, store: &AnyStore, views: &[&AnyView]) -> Result<Vec<MappingTable>> {
        // Delegate as a batch so the mmap variant keeps its single
        // /proc/self/maps parse per batch (paper §2.5).
        match (self, store) {
            (AnyBackend::Sim(b), AnyStore::Sim(s)) => {
                let inner = views
                    .iter()
                    .map(|v| match v {
                        AnyView::Sim(v) => Ok(v),
                        #[cfg(all(feature = "mmap", target_os = "linux"))]
                        _ => Err(MISMATCH),
                    })
                    .collect::<Result<Vec<_>>>()?;
                b.mapping_tables(s, &inner)
            }
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            (AnyBackend::Mmap(b), AnyStore::Mmap(s)) => {
                let inner = views
                    .iter()
                    .map(|v| match v {
                        AnyView::Mmap(v) => Ok(v),
                        _ => Err(MISMATCH),
                    })
                    .collect::<Result<Vec<_>>>()?;
                b.mapping_tables(s, &inner)
            }
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            (AnyBackend::File(b), AnyStore::File(s)) => {
                let inner = views
                    .iter()
                    .map(|v| match v {
                        AnyView::File(v) => Ok(v),
                        _ => Err(MISMATCH),
                    })
                    .collect::<Result<Vec<_>>>()?;
                b.mapping_tables(s, &inner)
            }
            #[cfg(all(feature = "mmap", target_os = "linux"))]
            _ => Err(MISMATCH),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise(backend: AnyBackend) {
        let mut store = backend.create_store(8).unwrap();
        for p in 0..8 {
            let page = store.page_mut(p);
            page[0] = p as u64;
            page[1] = 1000 + p as u64;
        }
        let mut view = backend.reserve_view(&store, 8).unwrap();
        backend
            .map_run(
                &store,
                &mut view,
                MapRequest {
                    slot: 0,
                    phys_page: 3,
                    len: 2,
                },
            )
            .unwrap();
        backend
            .map_run(&store, &mut view, MapRequest::single(2, 7))
            .unwrap();
        let ids: Vec<u64> = view.iter_pages().map(|p| p[0]).collect();
        assert_eq!(ids, vec![3, 4, 7]);
        let table = backend.mapping_table(&store, &view).unwrap();
        assert_eq!(table.phys_pages_sorted(), vec![3, 4, 7]);
        let tables = backend.mapping_tables(&store, &[&view]).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].phys_for_slot(2), Some(7));
        backend.truncate_view(&mut view, 1).unwrap();
        assert_eq!(view.mapped_pages(), 1);
        // Writes stay visible through the enum wrappers.
        store.page_mut(3)[5] = 42;
        assert_eq!(view.page(0)[5], 42);
        let full = backend.create_full_view(&store).unwrap();
        assert_eq!(full.mapped_pages(), 8);
        assert_eq!(full.capacity_pages(), 8);
    }

    #[test]
    fn sim_variant_behaves_like_sim_backend() {
        assert_eq!(AnyBackend::sim().name(), "sim");
        exercise(AnyBackend::sim());
    }

    #[cfg(all(feature = "mmap", target_os = "linux"))]
    #[test]
    fn mmap_variant_behaves_like_mmap_backend() {
        assert_eq!(AnyBackend::mmap().name(), "mmap");
        exercise(AnyBackend::mmap());
    }

    #[cfg(all(feature = "mmap", target_os = "linux"))]
    #[test]
    fn file_variant_behaves_like_file_backend() {
        let b = AnyBackend::file();
        assert_eq!(b.name(), "file");
        let dir = match &b {
            AnyBackend::File(f) => f.dir().to_path_buf(),
            _ => unreachable!(),
        };
        exercise(b);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn sync_is_a_noop_on_memory_backends() {
        let b = AnyBackend::sim();
        let store = b.create_store(2).unwrap();
        store.sync_all().unwrap();
        store.flush_pages(0, 2).unwrap();
        #[cfg(all(feature = "mmap", target_os = "linux"))]
        assert!(store.as_file().is_none());
    }

    #[test]
    fn from_name_resolves_platform_backends() {
        for &name in AnyBackend::available_names() {
            let b = AnyBackend::from_name(name).expect("advertised backend must resolve");
            assert_eq!(b.name(), name);
        }
        assert!(AnyBackend::from_name("quantum").is_none());
    }

    #[test]
    fn default_backend_prefers_rewiring_on_linux() {
        let name = AnyBackend::default_backend().name();
        if cfg!(all(feature = "mmap", target_os = "linux")) {
            assert_eq!(name, "mmap");
        } else {
            assert_eq!(name, "sim");
        }
    }

    #[cfg(all(feature = "mmap", target_os = "linux"))]
    #[test]
    fn variant_mismatch_is_reported_not_crashed() {
        let sim = AnyBackend::sim();
        let mmap = AnyBackend::mmap();
        let sim_store = sim.create_store(2).unwrap();
        let mmap_store = mmap.create_store(2).unwrap();
        assert!(mmap.reserve_view(&sim_store, 2).is_err());
        let mut sim_view = sim.reserve_view(&sim_store, 2).unwrap();
        assert!(mmap
            .map_run(&mmap_store, &mut sim_view, MapRequest::single(0, 0))
            .is_err());
        assert!(mmap.mapping_table(&mmap_store, &sim_view).is_err());
        let mmap_view = mmap.reserve_view(&mmap_store, 2).unwrap();
        assert!(mmap
            .mapping_tables(&mmap_store, &[&sim_view, &mmap_view])
            .is_err());
    }
}
