//! `/proc/self/maps` introspection and the user-space mapping table.
//!
//! To align partial views with a batch of updates, the paper obtains the
//! current virtual-page → physical-page mapping by parsing the kernel's
//! `/proc/PID/maps` virtual file once per batch and materializing it
//! page-wise in a bidirectional map (paper §2.5). This module implements
//! the parser and the resulting [`MappingTable`].

use std::fs;

use asv_util::BiMap;

use crate::error::{Result, VmemError};
use crate::layout::PAGE_SIZE_BYTES;

/// One parsed line of `/proc/self/maps`.
///
/// ```text
/// address           perms offset  dev   inode   pathname
/// 7f01c200000-...   rw-s  002000  00:01 64593   /memfd:asv (deleted)
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcMapsEntry {
    /// Start of the mapped virtual address range (inclusive).
    pub start: usize,
    /// End of the mapped virtual address range (exclusive).
    pub end: usize,
    /// Permission string, e.g. `rw-s`.
    pub perms: String,
    /// Offset into the mapped file, in bytes.
    pub offset: u64,
    /// Device field, e.g. `00:01`.
    pub dev: String,
    /// Inode of the mapped file (0 for anonymous mappings).
    pub inode: u64,
    /// Path of the mapped file, if any.
    pub pathname: Option<String>,
}

impl ProcMapsEntry {
    /// Length of the mapping in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Returns `true` if the mapping covers zero bytes (never the case for
    /// real kernel output, but kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Returns `true` if this is a shared file-backed mapping — the kind of
    /// mapping rewired view pages have (`MAP_SHARED` of the main-memory
    /// file).
    pub fn is_shared_file_mapping(&self) -> bool {
        self.perms.ends_with('s') && self.inode != 0
    }
}

/// Parses a single line of `/proc/self/maps`.
pub fn parse_maps_line(line: &str) -> Result<ProcMapsEntry> {
    let mut fields = line.split_whitespace();
    let range = fields
        .next()
        .ok_or_else(|| VmemError::MapsParse(line.to_string()))?;
    let (start_s, end_s) = range
        .split_once('-')
        .ok_or_else(|| VmemError::MapsParse(line.to_string()))?;
    let start =
        usize::from_str_radix(start_s, 16).map_err(|_| VmemError::MapsParse(line.to_string()))?;
    let end =
        usize::from_str_radix(end_s, 16).map_err(|_| VmemError::MapsParse(line.to_string()))?;
    let perms = fields
        .next()
        .ok_or_else(|| VmemError::MapsParse(line.to_string()))?
        .to_string();
    let offset_s = fields
        .next()
        .ok_or_else(|| VmemError::MapsParse(line.to_string()))?;
    let offset =
        u64::from_str_radix(offset_s, 16).map_err(|_| VmemError::MapsParse(line.to_string()))?;
    let dev = fields
        .next()
        .ok_or_else(|| VmemError::MapsParse(line.to_string()))?
        .to_string();
    let inode_s = fields
        .next()
        .ok_or_else(|| VmemError::MapsParse(line.to_string()))?;
    let inode = inode_s
        .parse::<u64>()
        .map_err(|_| VmemError::MapsParse(line.to_string()))?;
    let rest: Vec<&str> = fields.collect();
    let pathname = if rest.is_empty() {
        None
    } else {
        Some(rest.join(" "))
    };
    Ok(ProcMapsEntry {
        start,
        end,
        perms,
        offset,
        dev,
        inode,
        pathname,
    })
}

/// Reads and parses all of `/proc/self/maps`.
pub fn read_self_maps() -> Result<Vec<ProcMapsEntry>> {
    let content = fs::read_to_string("/proc/self/maps")?;
    parse_maps(&content)
}

/// Parses the full content of a maps file.
pub fn parse_maps(content: &str) -> Result<Vec<ProcMapsEntry>> {
    content
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(parse_maps_line)
        .collect()
}

/// The user-space materialization of one view's slot ↔ physical-page
/// mapping (the paper's Boost `bimap`, §2.5).
///
/// Left side: view slot index; right side: physical page number.
#[derive(Clone, Debug, Default)]
pub struct MappingTable {
    map: BiMap<usize, usize>,
}

impl MappingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self { map: BiMap::new() }
    }

    /// Creates an empty table with capacity for `cap` mappings.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            map: BiMap::with_capacity(cap),
        }
    }

    /// Number of mapped (slot, physical page) pairs.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no pages are mapped.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Records that view slot `slot` maps physical page `phys_page`.
    pub fn insert(&mut self, slot: usize, phys_page: usize) {
        self.map.insert(slot, phys_page);
    }

    /// The physical page mapped at `slot`, if any.
    pub fn phys_for_slot(&self, slot: usize) -> Option<usize> {
        self.map.get_by_left(&slot).copied()
    }

    /// The view slot that maps `phys_page`, if any.
    pub fn slot_for_phys(&self, phys_page: usize) -> Option<usize> {
        self.map.get_by_right(&phys_page).copied()
    }

    /// Returns `true` if the view maps `phys_page`.
    pub fn contains_phys(&self, phys_page: usize) -> bool {
        self.map.contains_right(&phys_page)
    }

    /// Removes the mapping of view slot `slot`, returning the physical page.
    pub fn remove_slot(&mut self, slot: usize) -> Option<usize> {
        self.map.remove_by_left(&slot)
    }

    /// Removes the mapping of physical page `phys_page`, returning the slot.
    pub fn remove_phys(&mut self, phys_page: usize) -> Option<usize> {
        self.map.remove_by_right(&phys_page)
    }

    /// Iterates over all `(slot, phys_page)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.map.iter().map(|(s, p)| (*s, *p))
    }

    /// All mapped physical pages, sorted ascending.
    pub fn phys_pages_sorted(&self) -> Vec<usize> {
        let mut v: Vec<usize> = self.map.iter().map(|(_, p)| *p).collect();
        v.sort_unstable();
        v
    }
}

/// Builds a [`MappingTable`] for a view from parsed maps entries.
///
/// `view_base` / `view_capacity_bytes` delimit the view's virtual
/// reservation. Every *shared file* mapping inside that window contributes
/// its pages: the slot index is derived from the virtual address, the
/// physical page from the file offset.
pub fn mapping_table_for_window(
    entries: &[ProcMapsEntry],
    view_base: usize,
    view_capacity_bytes: usize,
) -> MappingTable {
    let view_end = view_base + view_capacity_bytes;
    let mut table = MappingTable::new();
    for e in entries {
        if !e.is_shared_file_mapping() {
            continue;
        }
        // Clamp the entry to the view window.
        let start = e.start.max(view_base);
        let end = e.end.min(view_end);
        if start >= end {
            continue;
        }
        let mut addr = start;
        while addr < end {
            let slot = (addr - view_base) / PAGE_SIZE_BYTES;
            let file_off = e.offset as usize + (addr - e.start);
            let phys_page = file_off / PAGE_SIZE_BYTES;
            table.insert(slot, phys_page);
            addr += PAGE_SIZE_BYTES;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str =
        "7f0000000000-7f0000003000 rw-s 00002000 00:01 64593 /memfd:asv (deleted)\n\
7f0000004000-7f0000005000 rw-p 00000000 00:00 0 \n\
7f0000005000-7f0000006000 rw-s 00010000 00:01 64593 /memfd:asv (deleted)\n";

    #[test]
    fn parse_single_line() {
        let e = parse_maps_line("08048000-08056000 rw-s 00002000 03:0c 64593 /dev/shm/db").unwrap();
        assert_eq!(e.start, 0x08048000);
        assert_eq!(e.end, 0x08056000);
        assert_eq!(e.perms, "rw-s");
        assert_eq!(e.offset, 0x2000);
        assert_eq!(e.dev, "03:0c");
        assert_eq!(e.inode, 64593);
        assert_eq!(e.pathname.as_deref(), Some("/dev/shm/db"));
        assert_eq!(e.len(), 0x08056000 - 0x08048000);
        assert!(!e.is_empty());
        assert!(e.is_shared_file_mapping());
    }

    #[test]
    fn parse_line_without_pathname() {
        let e = parse_maps_line("7f0000004000-7f0000005000 rw-p 00000000 00:00 0").unwrap();
        assert_eq!(e.pathname, None);
        assert!(!e.is_shared_file_mapping());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_maps_line("not a maps line").is_err());
        assert!(parse_maps_line("").is_err());
        assert!(parse_maps_line("xyz-abc rw-p 0 00:00 0").is_err());
    }

    #[test]
    fn parse_whole_file() {
        let entries = parse_maps(SAMPLE).unwrap();
        assert_eq!(entries.len(), 3);
        assert!(entries[0].is_shared_file_mapping());
        assert!(!entries[1].is_shared_file_mapping());
    }

    #[test]
    fn read_self_maps_works_on_linux() {
        let entries = read_self_maps().unwrap();
        assert!(!entries.is_empty());
        // The current binary must appear as an executable file mapping.
        assert!(entries.iter().any(|e| e.perms.contains('x')));
    }

    #[test]
    fn mapping_table_basic_operations() {
        let mut t = MappingTable::new();
        assert!(t.is_empty());
        t.insert(0, 17);
        t.insert(1, 4);
        assert_eq!(t.len(), 2);
        assert_eq!(t.phys_for_slot(0), Some(17));
        assert_eq!(t.slot_for_phys(4), Some(1));
        assert!(t.contains_phys(17));
        assert!(!t.contains_phys(99));
        assert_eq!(t.phys_pages_sorted(), vec![4, 17]);
        assert_eq!(t.remove_phys(17), Some(0));
        assert_eq!(t.remove_slot(1), Some(4));
        assert!(t.is_empty());
    }

    #[test]
    fn window_extraction_derives_slots_and_phys_pages() {
        let entries = parse_maps(SAMPLE).unwrap();
        let base = 0x7f0000000000usize;
        let table = mapping_table_for_window(&entries, base, 16 * PAGE_SIZE_BYTES);
        // First entry: 3 pages at slots 0..3 mapping phys pages 2..5.
        // Third entry: 1 page at slot 5 mapping phys page 16.
        assert_eq!(table.len(), 4);
        assert_eq!(table.phys_for_slot(0), Some(2));
        assert_eq!(table.phys_for_slot(1), Some(3));
        assert_eq!(table.phys_for_slot(2), Some(4));
        assert_eq!(table.phys_for_slot(5), Some(16));
        assert_eq!(table.phys_for_slot(3), None);
        assert_eq!(table.slot_for_phys(16), Some(5));
    }

    #[test]
    fn window_extraction_ignores_out_of_window_entries() {
        let entries = parse_maps(SAMPLE).unwrap();
        // Window positioned after all entries.
        let table = mapping_table_for_window(&entries, 0x7f1000000000, 16 * PAGE_SIZE_BYTES);
        assert!(table.is_empty());
    }
}
