//! Durable file-backed variant of the mmap backend.
//!
//! [`crate::MmapBackend`] places physical columns in anonymous main-memory
//! files (memfd / unlinked tmpfs), so every table dies with the process.
//! [`FileBackend`] keeps the same rewiring mechanics — a full `MAP_SHARED`
//! write mapping over the store plus anonymous view reservations rewired
//! with `mmap(MAP_FIXED)` — but backs each store with a **named file on
//! disk** that survives the process. Two extra primitives make the store a
//! usable durability substrate:
//!
//! * [`FileStore::flush_pages`] — `msync(MS_SYNC)` a page-group of the
//!   store mapping, so dirty pages reach the file at chunk granularity;
//! * [`FileStore::sync_all`] — `fsync` the backing file, the commit-point
//!   barrier used by the write-ahead journal in `asv_core::wal`.
//!
//! The view type is shared with the mmap backend ([`MmapView`]): views are
//! process-local virtual memory either way and are rebuilt on recovery.

use std::fs::OpenOptions;
use std::os::fd::AsRawFd;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use crate::backend::{Backend, MapRequest, PhysicalStore};
use crate::error::{Result, VmemError};
use crate::layout::{PAGE_SIZE_BYTES, SLOTS_PER_PAGE};
use crate::maps::{self, MappingTable};
use crate::mmap::MmapView;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);
static STORE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The file-backed rewiring backend: stores are named files on disk.
#[derive(Clone, Debug)]
pub struct FileBackend {
    dir: PathBuf,
}

impl FileBackend {
    /// Creates a backend that places store files in `dir` (created on first
    /// use).
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into() }
    }

    /// Creates a backend with a process-unique directory under the system
    /// temp dir. The files persist until the OS cleans the temp dir, which
    /// is what the `--backend file` experiment runs want: durable within a
    /// run, disposable after.
    pub fn temp() -> Self {
        let unique = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
        Self::with_dir(
            std::env::temp_dir().join(format!("asv-file-{}-{unique}", std::process::id())),
        )
    }

    /// Directory holding this backend's store files.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// A physical column materialized in a named file on disk.
pub struct FileStore {
    file: std::fs::File,
    path: PathBuf,
    num_pages: usize,
    /// Full `MAP_SHARED` mapping of the file (write path). Null for empty
    /// stores.
    base: *mut u8,
}

// SAFETY: as for MmapStore — the store owns its file and base mapping
// exclusively and the raw pointer is only dereferenced through &self /
// &mut self methods.
unsafe impl Send for FileStore {}
unsafe impl Sync for FileStore {}

impl FileStore {
    /// Path of the backing file on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Base address of the full write mapping (null for empty stores).
    pub fn base_addr(&self) -> usize {
        self.base as usize
    }

    fn bytes(&self) -> usize {
        self.num_pages * PAGE_SIZE_BYTES
    }

    /// Synchronously writes a run of dirty pages back to the file
    /// (`msync(MS_SYNC)` at page-group granularity).
    pub fn flush_pages(&self, first_page: usize, len: usize) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        if first_page + len > self.num_pages {
            return Err(VmemError::out_of_bounds(format!(
                "flush of pages [{}, {}) exceeds store size {}",
                first_page,
                first_page + len,
                self.num_pages
            )));
        }
        let addr = unsafe { self.base.add(first_page * PAGE_SIZE_BYTES) };
        let rc = unsafe {
            libc::msync(
                addr as *mut libc::c_void,
                len * PAGE_SIZE_BYTES,
                libc::MS_SYNC,
            )
        };
        if rc != 0 {
            return Err(VmemError::last_os_error("msync"));
        }
        Ok(())
    }

    /// Flushes the whole store mapping and fsyncs the backing file — the
    /// durability barrier used at commit boundaries.
    pub fn sync_all(&self) -> Result<()> {
        self.flush_pages(0, self.num_pages)?;
        self.file.sync_all()?;
        Ok(())
    }
}

impl PhysicalStore for FileStore {
    fn num_pages(&self) -> usize {
        self.num_pages
    }

    fn page(&self, phys_page: usize) -> &[u64] {
        assert!(
            phys_page < self.num_pages,
            "physical page {phys_page} out of bounds ({} pages)",
            self.num_pages
        );
        // SAFETY: bounds checked above; the mapping covers num_pages pages
        // and lives as long as &self.
        unsafe {
            std::slice::from_raw_parts(
                self.base.add(phys_page * PAGE_SIZE_BYTES) as *const u64,
                SLOTS_PER_PAGE,
            )
        }
    }

    fn page_mut(&mut self, phys_page: usize) -> &mut [u64] {
        assert!(
            phys_page < self.num_pages,
            "physical page {phys_page} out of bounds ({} pages)",
            self.num_pages
        );
        // SAFETY: as above, and &mut self guarantees exclusive access through
        // this handle.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.base.add(phys_page * PAGE_SIZE_BYTES) as *mut u64,
                SLOTS_PER_PAGE,
            )
        }
    }
}

impl Drop for FileStore {
    fn drop(&mut self) {
        if !self.base.is_null() {
            unsafe {
                libc::munmap(self.base as *mut libc::c_void, self.bytes());
            }
        }
        // The File closes its descriptor on drop; the named file stays on
        // disk — that is the durability contract.
    }
}

impl Backend for FileBackend {
    type Store = FileStore;
    type View = MmapView;

    fn name(&self) -> &'static str {
        "file"
    }

    fn create_store(&self, num_pages: usize) -> Result<FileStore> {
        std::fs::create_dir_all(&self.dir)?;
        let unique = STORE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = self
            .dir
            .join(format!("store-{}-{unique}.asv", std::process::id()));
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let bytes = num_pages * PAGE_SIZE_BYTES;
        file.set_len(bytes as u64)?;
        let base = if bytes == 0 {
            std::ptr::null_mut()
        } else {
            let ptr = unsafe {
                libc::mmap(
                    std::ptr::null_mut(),
                    bytes,
                    libc::PROT_READ | libc::PROT_WRITE,
                    libc::MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == libc::MAP_FAILED {
                return Err(VmemError::last_os_error("mmap(file store)"));
            }
            ptr as *mut u8
        };
        Ok(FileStore {
            file,
            path,
            num_pages,
            base,
        })
    }

    fn reserve_view(&self, _store: &FileStore, capacity_pages: usize) -> Result<MmapView> {
        let bytes = capacity_pages * PAGE_SIZE_BYTES;
        let base = if bytes == 0 {
            std::ptr::null_mut()
        } else {
            let ptr = unsafe {
                libc::mmap(
                    std::ptr::null_mut(),
                    bytes,
                    libc::PROT_READ | libc::PROT_WRITE,
                    libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
                    -1,
                    0,
                )
            };
            if ptr == libc::MAP_FAILED {
                return Err(VmemError::last_os_error("mmap(view reservation)"));
            }
            ptr as *mut u8
        };
        Ok(MmapView {
            base,
            capacity_pages,
            mapped_pages: 0,
        })
    }

    fn map_run(&self, store: &FileStore, view: &mut MmapView, req: MapRequest) -> Result<()> {
        if req.len == 0 {
            return Ok(());
        }
        if req.slot + req.len > view.capacity_pages {
            return Err(VmemError::out_of_bounds(format!(
                "view slots [{}, {}) exceed capacity {}",
                req.slot,
                req.slot + req.len,
                view.capacity_pages
            )));
        }
        if req.phys_page + req.len > store.num_pages {
            return Err(VmemError::out_of_bounds(format!(
                "physical pages [{}, {}) exceed store size {}",
                req.phys_page,
                req.phys_page + req.len,
                store.num_pages
            )));
        }
        let addr = unsafe { view.base.add(req.slot * PAGE_SIZE_BYTES) };
        let ptr = unsafe {
            libc::mmap(
                addr as *mut libc::c_void,
                req.len * PAGE_SIZE_BYTES,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_FIXED,
                store.file.as_raw_fd(),
                (req.phys_page * PAGE_SIZE_BYTES) as libc::off_t,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(VmemError::last_os_error("mmap(MAP_FIXED rewire)"));
        }
        view.mapped_pages = view.mapped_pages.max(req.slot + req.len);
        Ok(())
    }

    fn truncate_view(&self, view: &mut MmapView, new_mapped_pages: usize) -> Result<()> {
        if new_mapped_pages >= view.mapped_pages {
            return Ok(());
        }
        let remove = view.mapped_pages - new_mapped_pages;
        let addr = unsafe { view.base.add(new_mapped_pages * PAGE_SIZE_BYTES) };
        let ptr = unsafe {
            libc::mmap(
                addr as *mut libc::c_void,
                remove * PAGE_SIZE_BYTES,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_FIXED | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(VmemError::last_os_error("mmap(anonymous re-cover)"));
        }
        view.mapped_pages = new_mapped_pages;
        Ok(())
    }

    fn mapping_table(&self, _store: &FileStore, view: &MmapView) -> Result<MappingTable> {
        let entries = maps::read_self_maps()?;
        Ok(maps::mapping_table_for_window(
            &entries,
            view.base as usize,
            view.capacity_pages * PAGE_SIZE_BYTES,
        ))
    }

    fn mapping_tables(&self, _store: &FileStore, views: &[&MmapView]) -> Result<Vec<MappingTable>> {
        let entries = maps::read_self_maps()?;
        Ok(views
            .iter()
            .map(|v| {
                maps::mapping_table_for_window(
                    &entries,
                    v.base as usize,
                    v.capacity_pages * PAGE_SIZE_BYTES,
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ViewBuffer;

    fn temp_backend() -> FileBackend {
        FileBackend::temp()
    }

    fn fill_page(store: &mut FileStore, page: usize) {
        let data = store.page_mut(page);
        data[0] = page as u64;
        for (i, slot) in data.iter_mut().enumerate().skip(1) {
            *slot = (page * 1000 + i) as u64;
        }
    }

    fn cleanup(b: &FileBackend) {
        let _ = std::fs::remove_dir_all(b.dir());
    }

    #[test]
    fn store_write_read_roundtrip() {
        let b = temp_backend();
        let mut store = b.create_store(8).unwrap();
        for p in 0..8 {
            fill_page(&mut store, p);
        }
        for p in 0..8 {
            let page = store.page(p);
            assert_eq!(page[0], p as u64);
            assert_eq!(
                page[SLOTS_PER_PAGE - 1],
                (p * 1000 + SLOTS_PER_PAGE - 1) as u64
            );
        }
        drop(store);
        cleanup(&b);
    }

    #[test]
    fn flushed_pages_survive_in_the_file() {
        let b = temp_backend();
        let mut store = b.create_store(4).unwrap();
        for p in 0..4 {
            fill_page(&mut store, p);
        }
        store.flush_pages(1, 2).unwrap();
        store.sync_all().unwrap();
        let path = store.path().to_path_buf();
        drop(store);
        // Re-read the raw file: the flushed pages must be on disk.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 4 * PAGE_SIZE_BYTES);
        for p in 0..4 {
            let off = p * PAGE_SIZE_BYTES;
            let slot0 = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
            assert_eq!(slot0, p as u64, "page {p} id survived");
            let off1 = off + 8;
            let slot1 = u64::from_le_bytes(bytes[off1..off1 + 8].try_into().unwrap());
            assert_eq!(slot1, (p * 1000 + 1) as u64);
        }
        cleanup(&b);
    }

    #[test]
    fn flush_bounds_are_checked() {
        let b = temp_backend();
        let store = b.create_store(2).unwrap();
        assert!(store.flush_pages(1, 2).is_err());
        store.flush_pages(0, 0).unwrap();
        drop(store);
        cleanup(&b);
    }

    #[test]
    fn rewired_view_reads_scattered_pages_in_slot_order() {
        let b = temp_backend();
        let mut store = b.create_store(16).unwrap();
        for p in 0..16 {
            fill_page(&mut store, p);
        }
        let mut view = b.reserve_view(&store, 16).unwrap();
        b.map_run(
            &store,
            &mut view,
            MapRequest {
                slot: 0,
                phys_page: 5,
                len: 3,
            },
        )
        .unwrap();
        b.map_run(&store, &mut view, MapRequest::single(3, 12))
            .unwrap();
        assert_eq!(view.mapped_pages(), 4);
        let ids: Vec<u64> = view.iter_pages().map(|p| p[0]).collect();
        assert_eq!(ids, vec![5, 6, 7, 12]);
        drop(view);
        drop(store);
        cleanup(&b);
    }

    #[test]
    fn writes_through_store_are_visible_in_views() {
        let b = temp_backend();
        let mut store = b.create_store(4).unwrap();
        let mut view = b.reserve_view(&store, 4).unwrap();
        b.map_run(&store, &mut view, MapRequest::single(0, 2))
            .unwrap();
        store.page_mut(2)[10] = 0xDEAD_BEEF;
        assert_eq!(view.page(0)[10], 0xDEAD_BEEF);
        drop(view);
        drop(store);
        cleanup(&b);
    }

    #[test]
    fn truncate_and_remap_work_like_the_mmap_backend() {
        let b = temp_backend();
        let store = b.create_store(8).unwrap();
        let mut view = b.reserve_view(&store, 8).unwrap();
        b.map_run(
            &store,
            &mut view,
            MapRequest {
                slot: 0,
                phys_page: 0,
                len: 5,
            },
        )
        .unwrap();
        b.truncate_view(&mut view, 2).unwrap();
        assert_eq!(view.mapped_pages(), 2);
        b.map_run(&store, &mut view, MapRequest::single(2, 7))
            .unwrap();
        assert_eq!(view.mapped_pages(), 3);
        drop(view);
        drop(store);
        cleanup(&b);
    }

    #[test]
    fn mapping_table_reflects_rewiring() {
        let b = temp_backend();
        let store = b.create_store(32).unwrap();
        let mut view = b.reserve_view(&store, 32).unwrap();
        b.map_run(
            &store,
            &mut view,
            MapRequest {
                slot: 0,
                phys_page: 10,
                len: 2,
            },
        )
        .unwrap();
        b.map_run(&store, &mut view, MapRequest::single(2, 30))
            .unwrap();
        let table = b.mapping_table(&store, &view).unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table.phys_for_slot(0), Some(10));
        assert_eq!(table.phys_for_slot(2), Some(30));
        drop(view);
        drop(store);
        cleanup(&b);
    }

    #[test]
    fn empty_store_is_allowed() {
        let b = temp_backend();
        let store = b.create_store(0).unwrap();
        assert_eq!(store.num_pages(), 0);
        store.sync_all().unwrap();
        let view = b.reserve_view(&store, 0).unwrap();
        assert_eq!(view.capacity_pages(), 0);
        drop(view);
        drop(store);
        cleanup(&b);
    }

    #[test]
    fn backend_reports_its_name() {
        assert_eq!(temp_backend().name(), "file");
    }
}
