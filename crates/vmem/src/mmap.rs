//! The real memory-rewiring backend: main-memory files + `mmap(MAP_FIXED)`.
//!
//! "The core idea is to introduce physical memory to user-space in the form
//! of main-memory files. [...] By creating a virtual memory area that maps
//! to such a main-memory file using mmap(), we can establish a controllable
//! mapping from virtual to physical memory." (paper §1.2)
//!
//! * A [`MmapStore`] is a main-memory file (a `memfd`, falling back to an
//!   unlinked tmpfs file) plus one full shared mapping used as the write
//!   path for the physical column.
//! * A [`MmapView`] is an anonymous over-allocated reservation whose page
//!   slots are rewired to arbitrary pages of the file with
//!   `mmap(MAP_SHARED | MAP_FIXED)`.
//!
//! Only Linux is supported; the portable [`crate::SimBackend`] covers other
//! platforms for correctness testing.

use std::ffi::CString;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::backend::{Backend, MapRequest, PhysicalStore, ViewBuffer};
use crate::error::{Result, VmemError};
use crate::layout::{PAGE_SIZE_BYTES, SLOTS_PER_PAGE};
use crate::maps::{self, MappingTable};

/// How the backing main-memory file is created.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemoryFileKind {
    /// `memfd_create(2)` — an anonymous main-memory file (preferred).
    Memfd,
    /// A file created (and immediately unlinked) inside a tmpfs directory,
    /// e.g. `/dev/shm` (the paper's setup uses a tmpfs mount, §3).
    Tmpfs(std::path::PathBuf),
}

/// The mmap-based rewiring backend.
#[derive(Clone, Debug)]
pub struct MmapBackend {
    kind: MemoryFileKind,
}

impl Default for MmapBackend {
    fn default() -> Self {
        Self::new()
    }
}

static FILE_COUNTER: AtomicU64 = AtomicU64::new(0);

impl MmapBackend {
    /// Creates a backend that uses `memfd_create`, falling back to `/dev/shm`
    /// if the syscall is unavailable.
    pub fn new() -> Self {
        Self {
            kind: MemoryFileKind::Memfd,
        }
    }

    /// Creates a backend that places main-memory files in the given tmpfs
    /// directory (the files are unlinked right after creation).
    pub fn with_tmpfs_dir(dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            kind: MemoryFileKind::Tmpfs(dir.into()),
        }
    }

    fn create_memory_file(&self, bytes: usize) -> Result<libc::c_int> {
        let fd = match &self.kind {
            MemoryFileKind::Memfd => {
                let name = CString::new("asv-column").expect("static name");
                let fd = unsafe { libc::memfd_create(name.as_ptr(), 0) };
                if fd >= 0 {
                    fd
                } else {
                    // Kernel without memfd support: fall back to tmpfs.
                    Self::create_tmpfs_file(std::path::Path::new("/dev/shm"))?
                }
            }
            MemoryFileKind::Tmpfs(dir) => Self::create_tmpfs_file(dir)?,
        };
        if unsafe { libc::ftruncate(fd, bytes as libc::off_t) } != 0 {
            let err = VmemError::last_os_error("ftruncate");
            unsafe { libc::close(fd) };
            return Err(err);
        }
        Ok(fd)
    }

    fn create_tmpfs_file(dir: &std::path::Path) -> Result<libc::c_int> {
        let unique = FILE_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("asv-{}-{}", std::process::id(), unique));
        let c_path = CString::new(path.as_os_str().as_encoded_bytes())
            .map_err(|_| VmemError::Unsupported("tmpfs path contains NUL"))?;
        let fd = unsafe {
            libc::open(
                c_path.as_ptr(),
                libc::O_RDWR | libc::O_CREAT | libc::O_EXCL | libc::O_CLOEXEC,
                0o600,
            )
        };
        if fd < 0 {
            return Err(VmemError::last_os_error("open(tmpfs file)"));
        }
        // Unlink immediately: the file keeps existing through the fd, giving
        // the same anonymous-main-memory semantics as a memfd.
        unsafe { libc::unlink(c_path.as_ptr()) };
        Ok(fd)
    }
}

/// A physical column materialized in a main-memory file.
pub struct MmapStore {
    fd: libc::c_int,
    num_pages: usize,
    /// Full `MAP_SHARED` mapping of the file (write path). Null for empty
    /// stores.
    base: *mut u8,
}

// SAFETY: the store owns its fd and its base mapping exclusively; the raw
// pointer is only dereferenced through &self / &mut self methods, so the
// usual borrow rules serialize access exactly like they would for a Vec.
unsafe impl Send for MmapStore {}
unsafe impl Sync for MmapStore {}

impl MmapStore {
    /// File descriptor of the underlying main-memory file.
    pub fn fd(&self) -> libc::c_int {
        self.fd
    }

    /// Base address of the full write mapping (null for empty stores).
    pub fn base_addr(&self) -> usize {
        self.base as usize
    }

    fn bytes(&self) -> usize {
        self.num_pages * PAGE_SIZE_BYTES
    }
}

impl PhysicalStore for MmapStore {
    fn num_pages(&self) -> usize {
        self.num_pages
    }

    fn page(&self, phys_page: usize) -> &[u64] {
        assert!(
            phys_page < self.num_pages,
            "physical page {phys_page} out of bounds ({} pages)",
            self.num_pages
        );
        // SAFETY: bounds checked above; the mapping covers num_pages pages
        // and lives as long as &self.
        unsafe {
            std::slice::from_raw_parts(
                self.base.add(phys_page * PAGE_SIZE_BYTES) as *const u64,
                SLOTS_PER_PAGE,
            )
        }
    }

    fn page_mut(&mut self, phys_page: usize) -> &mut [u64] {
        assert!(
            phys_page < self.num_pages,
            "physical page {phys_page} out of bounds ({} pages)",
            self.num_pages
        );
        // SAFETY: as above, and &mut self guarantees exclusive access through
        // this handle.
        unsafe {
            std::slice::from_raw_parts_mut(
                self.base.add(phys_page * PAGE_SIZE_BYTES) as *mut u64,
                SLOTS_PER_PAGE,
            )
        }
    }
}

impl Drop for MmapStore {
    fn drop(&mut self) {
        unsafe {
            if !self.base.is_null() {
                libc::munmap(self.base as *mut libc::c_void, self.bytes());
            }
            libc::close(self.fd);
        }
    }
}

/// A virtual view buffer: an anonymous reservation whose page slots are
/// rewired onto physical pages of a [`MmapStore`].
pub struct MmapView {
    pub(crate) base: *mut u8,
    pub(crate) capacity_pages: usize,
    pub(crate) mapped_pages: usize,
}

// SAFETY: the view owns its reservation exclusively; see MmapStore.
unsafe impl Send for MmapView {}
unsafe impl Sync for MmapView {}

impl MmapView {
    /// Base address of the virtual reservation.
    pub fn base_addr(&self) -> usize {
        self.base as usize
    }
}

impl ViewBuffer for MmapView {
    fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    fn mapped_pages(&self) -> usize {
        self.mapped_pages
    }

    fn page(&self, slot: usize) -> &[u64] {
        assert!(
            slot < self.mapped_pages,
            "view slot {slot} out of bounds ({} mapped pages)",
            self.mapped_pages
        );
        // SAFETY: bounds checked; all slots < mapped_pages have been mapped
        // by map_run and stay valid while the view lives.
        unsafe {
            std::slice::from_raw_parts(
                self.base.add(slot * PAGE_SIZE_BYTES) as *const u64,
                SLOTS_PER_PAGE,
            )
        }
    }
}

impl Drop for MmapView {
    fn drop(&mut self) {
        if !self.base.is_null() && self.capacity_pages > 0 {
            unsafe {
                libc::munmap(
                    self.base as *mut libc::c_void,
                    self.capacity_pages * PAGE_SIZE_BYTES,
                );
            }
        }
    }
}

impl Backend for MmapBackend {
    type Store = MmapStore;
    type View = MmapView;

    fn name(&self) -> &'static str {
        "mmap"
    }

    fn create_store(&self, num_pages: usize) -> Result<MmapStore> {
        let bytes = num_pages * PAGE_SIZE_BYTES;
        let fd = self.create_memory_file(bytes)?;
        let base = if bytes == 0 {
            std::ptr::null_mut()
        } else {
            let ptr = unsafe {
                libc::mmap(
                    std::ptr::null_mut(),
                    bytes,
                    libc::PROT_READ | libc::PROT_WRITE,
                    libc::MAP_SHARED,
                    fd,
                    0,
                )
            };
            if ptr == libc::MAP_FAILED {
                let err = VmemError::last_os_error("mmap(store)");
                unsafe { libc::close(fd) };
                return Err(err);
            }
            ptr as *mut u8
        };
        Ok(MmapStore {
            fd,
            num_pages,
            base,
        })
    }

    fn reserve_view(&self, _store: &MmapStore, capacity_pages: usize) -> Result<MmapView> {
        let bytes = capacity_pages * PAGE_SIZE_BYTES;
        let base = if bytes == 0 {
            std::ptr::null_mut()
        } else {
            let ptr = unsafe {
                libc::mmap(
                    std::ptr::null_mut(),
                    bytes,
                    libc::PROT_READ | libc::PROT_WRITE,
                    libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
                    -1,
                    0,
                )
            };
            if ptr == libc::MAP_FAILED {
                return Err(VmemError::last_os_error("mmap(view reservation)"));
            }
            ptr as *mut u8
        };
        Ok(MmapView {
            base,
            capacity_pages,
            mapped_pages: 0,
        })
    }

    fn map_run(&self, store: &MmapStore, view: &mut MmapView, req: MapRequest) -> Result<()> {
        if req.len == 0 {
            return Ok(());
        }
        if req.slot + req.len > view.capacity_pages {
            return Err(VmemError::out_of_bounds(format!(
                "view slots [{}, {}) exceed capacity {}",
                req.slot,
                req.slot + req.len,
                view.capacity_pages
            )));
        }
        if req.phys_page + req.len > store.num_pages {
            return Err(VmemError::out_of_bounds(format!(
                "physical pages [{}, {}) exceed store size {}",
                req.phys_page,
                req.phys_page + req.len,
                store.num_pages
            )));
        }
        let addr = unsafe { view.base.add(req.slot * PAGE_SIZE_BYTES) };
        let ptr = unsafe {
            libc::mmap(
                addr as *mut libc::c_void,
                req.len * PAGE_SIZE_BYTES,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_SHARED | libc::MAP_FIXED,
                store.fd,
                (req.phys_page * PAGE_SIZE_BYTES) as libc::off_t,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(VmemError::last_os_error("mmap(MAP_FIXED rewire)"));
        }
        view.mapped_pages = view.mapped_pages.max(req.slot + req.len);
        Ok(())
    }

    fn truncate_view(&self, view: &mut MmapView, new_mapped_pages: usize) -> Result<()> {
        if new_mapped_pages >= view.mapped_pages {
            return Ok(());
        }
        let remove = view.mapped_pages - new_mapped_pages;
        let addr = unsafe { view.base.add(new_mapped_pages * PAGE_SIZE_BYTES) };
        // Re-cover the released slots with fresh anonymous memory so the
        // reservation stays intact and the slots can be reused later.
        let ptr = unsafe {
            libc::mmap(
                addr as *mut libc::c_void,
                remove * PAGE_SIZE_BYTES,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_FIXED | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if ptr == libc::MAP_FAILED {
            return Err(VmemError::last_os_error("mmap(anonymous re-cover)"));
        }
        view.mapped_pages = new_mapped_pages;
        Ok(())
    }

    fn mapping_table(&self, _store: &MmapStore, view: &MmapView) -> Result<MappingTable> {
        let entries = maps::read_self_maps()?;
        Ok(maps::mapping_table_for_window(
            &entries,
            view.base as usize,
            view.capacity_pages * PAGE_SIZE_BYTES,
        ))
    }

    fn mapping_tables(&self, _store: &MmapStore, views: &[&MmapView]) -> Result<Vec<MappingTable>> {
        // Parse /proc/self/maps exactly once for the whole batch (§2.5) and
        // slice the per-view windows out of the parsed entries.
        let entries = maps::read_self_maps()?;
        Ok(views
            .iter()
            .map(|v| {
                maps::mapping_table_for_window(
                    &entries,
                    v.base as usize,
                    v.capacity_pages * PAGE_SIZE_BYTES,
                )
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn backend() -> MmapBackend {
        MmapBackend::new()
    }

    /// Writes a recognizable pattern into a page: slot 0 = page id,
    /// remaining slots = `id * 1000 + slot`.
    fn fill_page(store: &mut MmapStore, page: usize) {
        let data = store.page_mut(page);
        data[0] = page as u64;
        for (i, slot) in data.iter_mut().enumerate().skip(1) {
            *slot = (page * 1000 + i) as u64;
        }
    }

    #[test]
    fn store_pages_are_zero_initialized() {
        let b = backend();
        let store = b.create_store(4).unwrap();
        assert_eq!(store.num_pages(), 4);
        for p in 0..4 {
            assert!(store.page(p).iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn store_write_read_roundtrip() {
        let b = backend();
        let mut store = b.create_store(8).unwrap();
        for p in 0..8 {
            fill_page(&mut store, p);
        }
        for p in 0..8 {
            let page = store.page(p);
            assert_eq!(page[0], p as u64);
            assert_eq!(page[1], (p * 1000 + 1) as u64);
            assert_eq!(
                page[SLOTS_PER_PAGE - 1],
                (p * 1000 + SLOTS_PER_PAGE - 1) as u64
            );
        }
    }

    #[test]
    fn empty_store_is_allowed() {
        let b = backend();
        let store = b.create_store(0).unwrap();
        assert_eq!(store.num_pages(), 0);
        let view = b.reserve_view(&store, 0).unwrap();
        assert_eq!(view.capacity_pages(), 0);
        assert_eq!(view.mapped_pages(), 0);
    }

    #[test]
    fn rewired_view_reads_scattered_pages_in_slot_order() {
        let b = backend();
        let mut store = b.create_store(16).unwrap();
        for p in 0..16 {
            fill_page(&mut store, p);
        }
        let mut view = b.reserve_view(&store, 16).unwrap();
        // Map pages 5, 6, 7 (one run) and page 12 (second run).
        b.map_run(
            &store,
            &mut view,
            MapRequest {
                slot: 0,
                phys_page: 5,
                len: 3,
            },
        )
        .unwrap();
        b.map_run(&store, &mut view, MapRequest::single(3, 12))
            .unwrap();
        assert_eq!(view.mapped_pages(), 4);
        let ids: Vec<u64> = view.iter_pages().map(|p| p[0]).collect();
        assert_eq!(ids, vec![5, 6, 7, 12]);
    }

    #[test]
    fn writes_through_store_are_visible_in_views() {
        let b = backend();
        let mut store = b.create_store(4).unwrap();
        let mut view = b.reserve_view(&store, 4).unwrap();
        b.map_run(&store, &mut view, MapRequest::single(0, 2))
            .unwrap();
        store.page_mut(2)[10] = 0xDEAD_BEEF;
        assert_eq!(view.page(0)[10], 0xDEAD_BEEF);
    }

    #[test]
    fn full_view_maps_whole_store_in_order() {
        let b = backend();
        let mut store = b.create_store(10).unwrap();
        for p in 0..10 {
            fill_page(&mut store, p);
        }
        let full = b.create_full_view(&store).unwrap();
        assert_eq!(full.mapped_pages(), 10);
        for (slot, page) in full.iter_pages().enumerate() {
            assert_eq!(page[0], slot as u64);
        }
    }

    #[test]
    fn truncate_releases_tail_slots() {
        let b = backend();
        let store = b.create_store(8).unwrap();
        let mut view = b.reserve_view(&store, 8).unwrap();
        b.map_run(
            &store,
            &mut view,
            MapRequest {
                slot: 0,
                phys_page: 0,
                len: 5,
            },
        )
        .unwrap();
        b.truncate_view(&mut view, 2).unwrap();
        assert_eq!(view.mapped_pages(), 2);
        // Truncating to a larger value is a no-op.
        b.truncate_view(&mut view, 7).unwrap();
        assert_eq!(view.mapped_pages(), 2);
        // Released slots can be remapped.
        b.map_run(&store, &mut view, MapRequest::single(2, 7))
            .unwrap();
        assert_eq!(view.mapped_pages(), 3);
    }

    #[test]
    fn map_run_bounds_are_checked() {
        let b = backend();
        let store = b.create_store(4).unwrap();
        let mut view = b.reserve_view(&store, 2).unwrap();
        // Slot range exceeds view capacity.
        assert!(b
            .map_run(
                &store,
                &mut view,
                MapRequest {
                    slot: 1,
                    phys_page: 0,
                    len: 2
                }
            )
            .is_err());
        // Physical range exceeds store size.
        assert!(b
            .map_run(
                &store,
                &mut view,
                MapRequest {
                    slot: 0,
                    phys_page: 3,
                    len: 2
                }
            )
            .is_err());
        // Zero-length mapping is a no-op.
        b.map_run(
            &store,
            &mut view,
            MapRequest {
                slot: 0,
                phys_page: 0,
                len: 0,
            },
        )
        .unwrap();
        assert_eq!(view.mapped_pages(), 0);
    }

    #[test]
    fn mapping_table_reflects_rewiring() {
        let b = backend();
        let store = b.create_store(32).unwrap();
        let mut view = b.reserve_view(&store, 32).unwrap();
        b.map_run(
            &store,
            &mut view,
            MapRequest {
                slot: 0,
                phys_page: 10,
                len: 2,
            },
        )
        .unwrap();
        b.map_run(&store, &mut view, MapRequest::single(2, 30))
            .unwrap();
        let table = b.mapping_table(&store, &view).unwrap();
        assert_eq!(table.len(), 3);
        assert_eq!(table.phys_for_slot(0), Some(10));
        assert_eq!(table.phys_for_slot(1), Some(11));
        assert_eq!(table.phys_for_slot(2), Some(30));
        assert_eq!(table.slot_for_phys(30), Some(2));
        assert!(!table.contains_phys(0));
    }

    #[test]
    fn tmpfs_backend_works_when_dev_shm_exists() {
        if !std::path::Path::new("/dev/shm").is_dir() {
            return; // environment without tmpfs mount
        }
        let b = MmapBackend::with_tmpfs_dir("/dev/shm");
        let mut store = b.create_store(2).unwrap();
        fill_page(&mut store, 1);
        let mut view = b.reserve_view(&store, 2).unwrap();
        b.map_run(&store, &mut view, MapRequest::single(0, 1))
            .unwrap();
        assert_eq!(view.page(0)[0], 1);
        assert_eq!(b.name(), "mmap");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_page_out_of_bounds_panics() {
        let b = backend();
        let store = b.create_store(2).unwrap();
        let view = b.reserve_view(&store, 2).unwrap();
        let _ = view.page(0); // nothing mapped yet
    }

    #[test]
    fn remapping_a_slot_changes_its_target() {
        let b = backend();
        let mut store = b.create_store(4).unwrap();
        for p in 0..4 {
            fill_page(&mut store, p);
        }
        let mut view = b.reserve_view(&store, 4).unwrap();
        b.map_run(&store, &mut view, MapRequest::single(0, 1))
            .unwrap();
        assert_eq!(view.page(0)[0], 1);
        // Rewire the same slot to another physical page — the essence of
        // "update the mapping freely at page granularity during runtime".
        b.map_run(&store, &mut view, MapRequest::single(0, 3))
            .unwrap();
        assert_eq!(view.page(0)[0], 3);
        assert_eq!(view.mapped_pages(), 1);
    }
}
