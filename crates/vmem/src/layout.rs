//! Page-layout constants.
//!
//! The adaptive layer "purely operates with 4KB small pages" (paper §3) and
//! stores 8-byte unsigned integers. Every physical page embeds an 8-byte
//! pageID in its first slot (paper §2), which leaves 511 value slots per
//! page. These constants are shared by every crate in the workspace.

/// Size of one page in bytes (the small-page size the paper uses).
pub const PAGE_SIZE_BYTES: usize = 4096;

/// Number of 8-byte slots per page (header slot + value slots).
pub const SLOTS_PER_PAGE: usize = PAGE_SIZE_BYTES / std::mem::size_of::<u64>();

/// Number of *value* slots per page. Slot 0 holds the embedded pageID
/// "to identify for each read value to which tuple it belongs" (paper §2),
/// so one slot per page is reserved.
pub const VALUES_PER_PAGE: usize = SLOTS_PER_PAGE - 1;

/// Converts a number of pages to a size in bytes.
#[inline]
pub const fn pages_to_bytes(pages: usize) -> usize {
    pages * PAGE_SIZE_BYTES
}

/// Number of pages needed to hold `values` values (each page holds
/// [`VALUES_PER_PAGE`] values).
#[inline]
pub const fn pages_for_values(values: usize) -> usize {
    values.div_ceil(VALUES_PER_PAGE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_consistent() {
        assert_eq!(PAGE_SIZE_BYTES, 4096);
        assert_eq!(SLOTS_PER_PAGE, 512);
        assert_eq!(VALUES_PER_PAGE, 511);
        assert_eq!(SLOTS_PER_PAGE * 8, PAGE_SIZE_BYTES);
    }

    #[test]
    fn page_byte_conversion() {
        assert_eq!(pages_to_bytes(0), 0);
        assert_eq!(pages_to_bytes(3), 3 * 4096);
    }

    #[test]
    fn pages_for_values_rounds_up() {
        assert_eq!(pages_for_values(0), 0);
        assert_eq!(pages_for_values(1), 1);
        assert_eq!(pages_for_values(VALUES_PER_PAGE), 1);
        assert_eq!(pages_for_values(VALUES_PER_PAGE + 1), 2);
        assert_eq!(pages_for_values(10 * VALUES_PER_PAGE), 10);
    }
}
