//! Virtual-memory rewiring substrate for the adaptive storage layer.
//!
//! The paper builds its storage views on *memory rewiring* (Schuhknecht et
//! al., "RUMA has it", PVLDB 2016): physical main memory is introduced to
//! user-space as a **main-memory file** (a memfd / tmpfs-backed file), and
//! virtual memory areas are freely re-mapped onto arbitrary pages of that
//! file with `mmap(MAP_FIXED)` at page granularity (paper §1.2).
//!
//! This crate provides that substrate behind the [`Backend`] trait:
//!
//! * [`MmapBackend`] — the real thing: memfd/tmpfs main-memory files,
//!   anonymous virtual reservations, `MAP_FIXED` rewiring, and
//!   `/proc/self/maps` introspection (paper §2.5). Linux only.
//! * [`SimBackend`] — a deterministic, allocation-based simulation of the
//!   same interface (an indirection table of page references). It exists so
//!   every algorithm in the upper layers can be unit- and property-tested
//!   on any platform and without touching the VM subsystem.
//! * [`AnyBackend`] — a runtime-selectable enum over the two, used by the
//!   experiment drivers, benches and examples (`--backend sim|mmap`). Its
//!   default is the mmap backend on Linux and the simulation elsewhere;
//!   published measurements should always come from the mmap backend.
//!
//! The two central objects are:
//!
//! * a **physical store** ([`PhysicalStore`]) — the materialized column
//!   memory, addressed by *physical page number*;
//! * a **view buffer** ([`ViewBuffer`]) — an over-allocated virtual memory
//!   area whose page slots can be mapped to arbitrary physical pages of one
//!   store. Scanning a view touches only the mapped prefix, which is exactly
//!   how partial views reduce scan work.

pub mod any;
pub mod backend;
pub mod error;
#[cfg(all(feature = "mmap", target_os = "linux"))]
pub mod file;
pub mod layout;
pub mod maps;
#[cfg(all(feature = "mmap", target_os = "linux"))]
pub mod mmap;
pub mod sim;

pub use any::{AnyBackend, AnyStore, AnyView};
pub use backend::{Backend, MapRequest, PhysicalStore, ViewBuffer};
pub use error::{Result, VmemError};
#[cfg(all(feature = "mmap", target_os = "linux"))]
pub use file::{FileBackend, FileStore};
pub use layout::{PAGE_SIZE_BYTES, SLOTS_PER_PAGE, VALUES_PER_PAGE};
pub use maps::{parse_maps_line, read_self_maps, MappingTable, ProcMapsEntry};
#[cfg(all(feature = "mmap", target_os = "linux"))]
pub use mmap::{MmapBackend, MmapStore, MmapView};
pub use sim::{SimBackend, SimStore, SimView};
