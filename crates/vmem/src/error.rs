//! Error type for the virtual-memory substrate.

use std::fmt;

/// Result alias used throughout the workspace's lower layers.
pub type Result<T> = std::result::Result<T, VmemError>;

/// Errors raised by the rewiring substrate.
#[derive(Debug)]
pub enum VmemError {
    /// A system call failed. Carries the call name and the OS error.
    Syscall {
        /// Name of the failing call (e.g. `"mmap"`, `"memfd_create"`).
        call: &'static str,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A plain I/O error (e.g. while reading `/proc/self/maps`).
    Io(std::io::Error),
    /// The caller asked for a mapping outside the bounds of a store or view.
    OutOfBounds {
        /// Human-readable description of the violated bound.
        what: String,
    },
    /// The requested operation is not supported by this backend/platform.
    Unsupported(&'static str),
    /// `/proc/self/maps` could not be interpreted.
    MapsParse(String),
}

impl fmt::Display for VmemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmemError::Syscall { call, source } => write!(f, "{call} failed: {source}"),
            VmemError::Io(e) => write!(f, "i/o error: {e}"),
            VmemError::OutOfBounds { what } => write!(f, "out of bounds: {what}"),
            VmemError::Unsupported(what) => write!(f, "unsupported: {what}"),
            VmemError::MapsParse(line) => write!(f, "cannot parse /proc/self/maps line: {line}"),
        }
    }
}

impl std::error::Error for VmemError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmemError::Syscall { source, .. } => Some(source),
            VmemError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for VmemError {
    fn from(e: std::io::Error) -> Self {
        VmemError::Io(e)
    }
}

impl VmemError {
    /// Builds a [`VmemError::Syscall`] from the current `errno`.
    pub fn last_os_error(call: &'static str) -> Self {
        VmemError::Syscall {
            call,
            source: std::io::Error::last_os_error(),
        }
    }

    /// Builds an [`VmemError::OutOfBounds`] with a formatted description.
    pub fn out_of_bounds(what: impl Into<String>) -> Self {
        VmemError::OutOfBounds { what: what.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = VmemError::out_of_bounds("page 7 of 4");
        assert!(e.to_string().contains("page 7 of 4"));
        let e = VmemError::Unsupported("mmap on this platform");
        assert!(e.to_string().contains("unsupported"));
        let e = VmemError::MapsParse("garbage".into());
        assert!(e.to_string().contains("garbage"));
        let e: VmemError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn syscall_error_has_source() {
        use std::error::Error;
        let e = VmemError::Syscall {
            call: "mmap",
            source: std::io::Error::from_raw_os_error(libc_einval()),
        };
        assert!(e.to_string().starts_with("mmap failed"));
        assert!(e.source().is_some());
    }

    fn libc_einval() -> i32 {
        22
    }
}
