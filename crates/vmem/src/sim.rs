//! A software-simulated rewiring backend.
//!
//! [`SimBackend`] implements the exact same [`Backend`] interface as the
//! mmap backend, but views are plain indirection tables (a vector of
//! physical page numbers) over a heap-allocated buffer. No syscalls, no
//! platform requirements, fully deterministic — which makes it the substrate
//! for unit tests, property tests and CI, and a useful "explicit
//! indirection" comparison point for the virtual views.
//!
//! Semantics intentionally mirror the mmap backend:
//!
//! * writes through the store are visible through every view that maps the
//!   written page (there is exactly one physical copy of the data);
//! * mapping a slot that is already mapped re-targets it;
//! * truncating a view releases its tail slots.
//!
//! The one place the simulation is *stricter* than mmap: reading a slot that
//! was never mapped panics (mmap would silently return anonymous zero
//! pages). This catches bookkeeping bugs in the upper layers early.

use std::sync::Arc;

use crate::backend::{Backend, MapRequest, PhysicalStore, ViewBuffer};
use crate::error::{Result, VmemError};
use crate::layout::SLOTS_PER_PAGE;
use crate::maps::MappingTable;

/// Sentinel for a view slot that has never been mapped.
const UNMAPPED: usize = usize::MAX;

/// Shared physical memory of a simulated store.
///
/// The buffer is held as raw parts and every page access derives its slice
/// straight from the base pointer, so a `&mut` page slice and `&` slices of
/// *other* pages may coexist — exactly the aliasing situation of the mmap
/// backend, where views hold shared mappings into the store while the write
/// path mutates individual pages. (A whole-buffer `&mut` is never formed, so
/// disjoint-page accesses from different threads are sound.)
struct SimBuffer {
    ptr: *mut u64,
    len: usize,
}

// SAFETY: the upper layers never access the *same page* mutably and in any
// other way at the same time (the serving layer hands readers frozen copies
// of pages a fold is about to write; single-threaded code separates scan and
// update phases). Disjoint pages are distinct memory: the buffer never
// reallocates, so page slices stay valid for its whole lifetime.
unsafe impl Send for SimBuffer {}
unsafe impl Sync for SimBuffer {}

impl SimBuffer {
    fn new(num_pages: usize) -> Self {
        let mut slots = vec![0u64; num_pages * SLOTS_PER_PAGE];
        let ptr = slots.as_mut_ptr();
        let len = slots.len();
        std::mem::forget(slots);
        Self { ptr, len }
    }

    /// # Safety
    /// Caller must ensure `phys_page` is in bounds and that no `&mut` slice
    /// of the *same page* is alive.
    unsafe fn page(&self, phys_page: usize) -> &[u64] {
        debug_assert!((phys_page + 1) * SLOTS_PER_PAGE <= self.len);
        std::slice::from_raw_parts(self.ptr.add(phys_page * SLOTS_PER_PAGE), SLOTS_PER_PAGE)
    }

    /// # Safety
    /// Caller must ensure `phys_page` is in bounds and that no other slice
    /// of the *same page* is alive.
    #[allow(clippy::mut_from_ref)]
    unsafe fn page_mut(&self, phys_page: usize) -> &mut [u64] {
        debug_assert!((phys_page + 1) * SLOTS_PER_PAGE <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(phys_page * SLOTS_PER_PAGE), SLOTS_PER_PAGE)
    }
}

impl Drop for SimBuffer {
    fn drop(&mut self) {
        // SAFETY: reconstructs exactly the Vec leaked in `new` (capacity ==
        // len: the vec was built with `vec![]` and never grown).
        drop(unsafe { Vec::from_raw_parts(self.ptr, self.len, self.len) });
    }
}

/// The simulated rewiring backend.
#[derive(Clone, Debug, Default)]
pub struct SimBackend;

impl SimBackend {
    /// Creates a new simulation backend.
    pub fn new() -> Self {
        Self
    }
}

/// A simulated physical column (heap buffer addressed by page number).
pub struct SimStore {
    buf: Arc<SimBuffer>,
    num_pages: usize,
}

impl PhysicalStore for SimStore {
    fn num_pages(&self) -> usize {
        self.num_pages
    }

    fn page(&self, phys_page: usize) -> &[u64] {
        assert!(
            phys_page < self.num_pages,
            "physical page {phys_page} out of bounds ({} pages)",
            self.num_pages
        );
        // SAFETY: bounds checked; shared read access through &self.
        unsafe { self.buf.page(phys_page) }
    }

    fn page_mut(&mut self, phys_page: usize) -> &mut [u64] {
        assert!(
            phys_page < self.num_pages,
            "physical page {phys_page} out of bounds ({} pages)",
            self.num_pages
        );
        // SAFETY: bounds checked; &mut self gives exclusive access through
        // this handle (views alias read-only, like shared mmap mappings).
        unsafe { self.buf.page_mut(phys_page) }
    }
}

/// A simulated view: an indirection vector of physical page numbers.
pub struct SimView {
    buf: Arc<SimBuffer>,
    store_pages: usize,
    capacity_pages: usize,
    slots: Vec<usize>,
}

impl SimView {
    /// The raw indirection table (physical page per mapped slot), mainly for
    /// debugging and tests.
    pub fn slot_targets(&self) -> &[usize] {
        &self.slots
    }
}

impl ViewBuffer for SimView {
    fn capacity_pages(&self) -> usize {
        self.capacity_pages
    }

    fn mapped_pages(&self) -> usize {
        self.slots.len()
    }

    fn page(&self, slot: usize) -> &[u64] {
        assert!(
            slot < self.slots.len(),
            "view slot {slot} out of bounds ({} mapped pages)",
            self.slots.len()
        );
        let phys = self.slots[slot];
        assert!(
            phys != UNMAPPED,
            "view slot {slot} was reserved but never mapped"
        );
        // SAFETY: phys was validated against the store size in map_run.
        unsafe { self.buf.page(phys) }
    }
}

impl Backend for SimBackend {
    type Store = SimStore;
    type View = SimView;

    fn name(&self) -> &'static str {
        "sim"
    }

    fn create_store(&self, num_pages: usize) -> Result<SimStore> {
        Ok(SimStore {
            buf: Arc::new(SimBuffer::new(num_pages)),
            num_pages,
        })
    }

    fn reserve_view(&self, store: &SimStore, capacity_pages: usize) -> Result<SimView> {
        Ok(SimView {
            buf: Arc::clone(&store.buf),
            store_pages: store.num_pages,
            capacity_pages,
            slots: Vec::with_capacity(capacity_pages.min(1024)),
        })
    }

    fn map_run(&self, store: &SimStore, view: &mut SimView, req: MapRequest) -> Result<()> {
        if req.len == 0 {
            return Ok(());
        }
        if req.slot + req.len > view.capacity_pages {
            return Err(VmemError::out_of_bounds(format!(
                "view slots [{}, {}) exceed capacity {}",
                req.slot,
                req.slot + req.len,
                view.capacity_pages
            )));
        }
        if req.phys_page + req.len > store.num_pages {
            return Err(VmemError::out_of_bounds(format!(
                "physical pages [{}, {}) exceed store size {}",
                req.phys_page,
                req.phys_page + req.len,
                store.num_pages
            )));
        }
        if view.slots.len() < req.slot + req.len {
            view.slots.resize(req.slot + req.len, UNMAPPED);
        }
        for i in 0..req.len {
            view.slots[req.slot + i] = req.phys_page + i;
        }
        Ok(())
    }

    fn truncate_view(&self, view: &mut SimView, new_mapped_pages: usize) -> Result<()> {
        if new_mapped_pages < view.slots.len() {
            view.slots.truncate(new_mapped_pages);
        }
        Ok(())
    }

    fn mapping_table(&self, _store: &SimStore, view: &SimView) -> Result<MappingTable> {
        let mut table = MappingTable::with_capacity(view.slots.len());
        for (slot, &phys) in view.slots.iter().enumerate() {
            if phys != UNMAPPED {
                table.insert(slot, phys);
            }
        }
        Ok(table)
    }
}

// Silence "field is never read" for store_pages: it documents the store the
// view belongs to and is used in debug assertions of upper layers.
impl SimView {
    /// Number of pages of the store this view was reserved over.
    pub fn store_pages(&self) -> usize {
        self.store_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_page(store: &mut SimStore, page: usize) {
        let data = store.page_mut(page);
        data[0] = page as u64;
        for (i, slot) in data.iter_mut().enumerate().skip(1) {
            *slot = (page * 1000 + i) as u64;
        }
    }

    #[test]
    fn store_roundtrip_and_zero_init() {
        let b = SimBackend::new();
        let mut store = b.create_store(4).unwrap();
        assert!(store.page(3).iter().all(|&v| v == 0));
        fill_page(&mut store, 3);
        assert_eq!(store.page(3)[0], 3);
        assert_eq!(store.page(3)[1], 3001);
    }

    #[test]
    fn view_maps_scattered_pages() {
        let b = SimBackend::new();
        let mut store = b.create_store(16).unwrap();
        for p in 0..16 {
            fill_page(&mut store, p);
        }
        let mut view = b.reserve_view(&store, 16).unwrap();
        b.map_run(
            &store,
            &mut view,
            MapRequest {
                slot: 0,
                phys_page: 5,
                len: 3,
            },
        )
        .unwrap();
        b.map_run(&store, &mut view, MapRequest::single(3, 12))
            .unwrap();
        let ids: Vec<u64> = view.iter_pages().map(|p| p[0]).collect();
        assert_eq!(ids, vec![5, 6, 7, 12]);
        assert_eq!(view.slot_targets(), &[5, 6, 7, 12]);
        assert_eq!(view.store_pages(), 16);
    }

    #[test]
    fn writes_are_visible_through_views() {
        let b = SimBackend::new();
        let mut store = b.create_store(4).unwrap();
        let mut view = b.reserve_view(&store, 4).unwrap();
        b.map_run(&store, &mut view, MapRequest::single(0, 2))
            .unwrap();
        store.page_mut(2)[7] = 42;
        assert_eq!(view.page(0)[7], 42);
    }

    #[test]
    fn full_view_and_truncate() {
        let b = SimBackend::new();
        let mut store = b.create_store(6).unwrap();
        for p in 0..6 {
            fill_page(&mut store, p);
        }
        let mut full = b.create_full_view(&store).unwrap();
        assert_eq!(full.mapped_pages(), 6);
        b.truncate_view(&mut full, 2).unwrap();
        assert_eq!(full.mapped_pages(), 2);
        b.truncate_view(&mut full, 5).unwrap();
        assert_eq!(full.mapped_pages(), 2);
    }

    #[test]
    fn bounds_errors() {
        let b = SimBackend::new();
        let store = b.create_store(4).unwrap();
        let mut view = b.reserve_view(&store, 2).unwrap();
        assert!(b
            .map_run(
                &store,
                &mut view,
                MapRequest {
                    slot: 1,
                    phys_page: 0,
                    len: 2
                }
            )
            .is_err());
        assert!(b
            .map_run(
                &store,
                &mut view,
                MapRequest {
                    slot: 0,
                    phys_page: 4,
                    len: 1
                }
            )
            .is_err());
        b.map_run(
            &store,
            &mut view,
            MapRequest {
                slot: 0,
                phys_page: 0,
                len: 0,
            },
        )
        .unwrap();
        assert_eq!(view.mapped_pages(), 0);
    }

    #[test]
    fn mapping_table_matches_slots() {
        let b = SimBackend::new();
        let store = b.create_store(8).unwrap();
        let mut view = b.reserve_view(&store, 8).unwrap();
        b.map_run(
            &store,
            &mut view,
            MapRequest {
                slot: 0,
                phys_page: 6,
                len: 2,
            },
        )
        .unwrap();
        let table = b.mapping_table(&store, &view).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.phys_for_slot(1), Some(7));
        assert_eq!(table.slot_for_phys(6), Some(0));
    }

    #[test]
    #[should_panic(expected = "never mapped")]
    fn reading_an_unmapped_gap_panics() {
        let b = SimBackend::new();
        let store = b.create_store(8).unwrap();
        let mut view = b.reserve_view(&store, 8).unwrap();
        // Create a gap at slot 0 by mapping only slot 1.
        b.map_run(&store, &mut view, MapRequest::single(1, 3))
            .unwrap();
        let _ = view.page(0);
    }

    #[test]
    fn remapping_a_slot_changes_its_target() {
        let b = SimBackend::new();
        let mut store = b.create_store(4).unwrap();
        for p in 0..4 {
            fill_page(&mut store, p);
        }
        let mut view = b.reserve_view(&store, 4).unwrap();
        b.map_run(&store, &mut view, MapRequest::single(0, 1))
            .unwrap();
        b.map_run(&store, &mut view, MapRequest::single(0, 3))
            .unwrap();
        assert_eq!(view.page(0)[0], 3);
        assert_eq!(view.mapped_pages(), 1);
    }

    #[test]
    fn backend_name() {
        assert_eq!(SimBackend::new().name(), "sim");
    }
}
