//! Backend abstraction: physical stores, view buffers and rewiring.
//!
//! The storage layer and the adaptive view machinery are generic over a
//! [`Backend`], so that the same algorithms run on the real virtual-memory
//! substrate ([`crate::MmapBackend`]) and on a deterministic software
//! simulation ([`crate::SimBackend`]).
//!
//! The vocabulary follows the paper:
//!
//! * a *physical column* lives in a **physical store** — memory addressed by
//!   physical page number `0..num_pages`;
//! * a *(full or partial) virtual view* lives in a **view buffer** — an
//!   over-allocated area of `capacity_pages` page slots of which the first
//!   `mapped_pages` slots are mapped to physical pages. Scanning a view
//!   touches only the mapped prefix.

use crate::error::Result;
use crate::maps::MappingTable;

/// Read/write access to the physical memory of one column, addressed by
/// physical page number.
///
/// Each page is a slice of [`crate::SLOTS_PER_PAGE`] `u64` slots; slot 0 is
/// reserved for the embedded pageID (see `asv-storage`).
pub trait PhysicalStore: Send + Sync {
    /// Number of physical pages in the store.
    fn num_pages(&self) -> usize;

    /// Immutable access to a physical page.
    ///
    /// # Panics
    /// Panics if `phys_page >= self.num_pages()`.
    fn page(&self, phys_page: usize) -> &[u64];

    /// Mutable access to a physical page.
    ///
    /// Writes through this handle are visible to every view that maps the
    /// page — that is the whole point of views being *virtual*: there is
    /// only one physical copy of the data.
    ///
    /// # Panics
    /// Panics if `phys_page >= self.num_pages()`.
    fn page_mut(&mut self, phys_page: usize) -> &mut [u64];
}

/// An over-allocated virtual memory area whose page slots map to physical
/// pages of one store.
///
/// Views are `Sync`: the parallel scan path shards a view's page range
/// across worker threads that all read through the same `&View`. Mutation
/// (mapping, truncation) goes through `&mut` on the [`Backend`] methods and
/// therefore cannot race with shared scans.
pub trait ViewBuffer: Send + Sync {
    /// Total number of page slots reserved for this view. Views are
    /// over-allocated to the size of the whole column because "we are
    /// unaware of how many physical pages will qualify" (paper §2).
    fn capacity_pages(&self) -> usize;

    /// Number of slots currently mapped to physical pages (the view's size
    /// in pages — part of the per-view metadata the paper keeps).
    fn mapped_pages(&self) -> usize;

    /// Read access to the `slot`-th mapped page of the view.
    ///
    /// # Panics
    /// Panics if `slot >= self.mapped_pages()`.
    fn page(&self, slot: usize) -> &[u64];

    /// Iterates over all mapped pages of the view, in slot order.
    fn iter_pages(&self) -> ViewPages<'_, Self>
    where
        Self: Sized,
    {
        ViewPages {
            view: self,
            slot: 0,
        }
    }
}

/// Iterator over the mapped pages of a view (see [`ViewBuffer::iter_pages`]).
pub struct ViewPages<'a, V: ViewBuffer> {
    view: &'a V,
    slot: usize,
}

impl<'a, V: ViewBuffer> Iterator for ViewPages<'a, V> {
    type Item = &'a [u64];

    fn next(&mut self) -> Option<Self::Item> {
        if self.slot < self.view.mapped_pages() {
            let p = self.view.page(self.slot);
            self.slot += 1;
            Some(p)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.view.mapped_pages().saturating_sub(self.slot);
        (rem, Some(rem))
    }
}

impl<V: ViewBuffer> ExactSizeIterator for ViewPages<'_, V> {}

/// A request to map `len` consecutive physical pages starting at
/// `phys_page` into the view, starting at view slot `slot`.
///
/// Batching consecutive pages into a single request is the paper's first
/// view-creation optimization (§2.3): "we map all previously seen qualifying
/// pages in one call".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MapRequest {
    /// First view slot to map.
    pub slot: usize,
    /// First physical page of the run.
    pub phys_page: usize,
    /// Number of consecutive pages to map.
    pub len: usize,
}

impl MapRequest {
    /// Convenience constructor for a single-page mapping.
    pub fn single(slot: usize, phys_page: usize) -> Self {
        Self {
            slot,
            phys_page,
            len: 1,
        }
    }
}

/// A rewiring backend: creates stores and views and manipulates the mapping
/// between them at page granularity.
pub trait Backend: Clone + Send + Sync + 'static {
    /// The physical-store type of this backend.
    type Store: PhysicalStore;
    /// The view-buffer type of this backend.
    type View: ViewBuffer;

    /// Short human-readable backend name (used in experiment output).
    fn name(&self) -> &'static str;

    /// Allocates a physical store of `num_pages` pages, zero-initialized.
    fn create_store(&self, num_pages: usize) -> Result<Self::Store>;

    /// Reserves a view buffer of `capacity_pages` slots over `store`.
    ///
    /// On the mmap backend this is a cheap anonymous reservation — "this
    /// first call to mmap() acts as a mere reservation of virtual memory
    /// for our view and is almost for free" (paper §2).
    fn reserve_view(&self, store: &Self::Store, capacity_pages: usize) -> Result<Self::View>;

    /// Maps a run of consecutive physical pages into consecutive view slots.
    ///
    /// Extends `mapped_pages()` to at least `req.slot + req.len`.
    fn map_run(&self, store: &Self::Store, view: &mut Self::View, req: MapRequest) -> Result<()>;

    /// Shrinks the mapped prefix of the view to `new_mapped_pages` slots,
    /// releasing the mappings of the removed tail slots.
    fn truncate_view(&self, view: &mut Self::View, new_mapped_pages: usize) -> Result<()>;

    /// Materializes the current slot ↔ physical-page mapping of `view`.
    ///
    /// On the mmap backend this parses `/proc/self/maps` (paper §2.5); on the
    /// simulation backend it reads the indirection table directly. The result
    /// is used by the batched update-alignment algorithm (paper §2.4).
    fn mapping_table(&self, store: &Self::Store, view: &Self::View) -> Result<MappingTable>;

    /// Materializes the mapping tables of several views at once.
    ///
    /// The paper parses `/proc/PID/maps` "only once before applying a batch
    /// of updates" (§2.5); backends that derive mapping tables from a
    /// process-wide source should override this to amortize that parse over
    /// all views of the batch. The default simply calls
    /// [`Backend::mapping_table`] per view.
    fn mapping_tables(
        &self,
        store: &Self::Store,
        views: &[&Self::View],
    ) -> Result<Vec<MappingTable>> {
        views.iter().map(|v| self.mapping_table(store, v)).collect()
    }

    /// Creates a *full view*: a view whose `num_pages(store)` slots map the
    /// whole store in physical order. Provided for convenience; backends may
    /// override it with something cheaper.
    fn create_full_view(&self, store: &Self::Store) -> Result<Self::View> {
        let n = store.num_pages();
        let mut view = self.reserve_view(store, n)?;
        if n > 0 {
            self.map_run(
                store,
                &mut view,
                MapRequest {
                    slot: 0,
                    phys_page: 0,
                    len: n,
                },
            )?;
        }
        Ok(view)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_request_single() {
        let r = MapRequest::single(3, 99);
        assert_eq!(
            r,
            MapRequest {
                slot: 3,
                phys_page: 99,
                len: 1
            }
        );
    }
}
