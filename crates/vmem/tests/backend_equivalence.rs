//! Backend equivalence and robustness tests.
//!
//! The simulation backend exists so that every algorithm of the upper layers
//! can be tested deterministically; that is only sound if it behaves exactly
//! like the mmap backend. These tests drive both backends through identical
//! random operation sequences and require identical observable state, and
//! additionally fuzz the `/proc/self/maps` parser.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! the randomized tests loop over seeded draws from the workspace's RNG
//! shim — fully deterministic for the hard-coded seeds.

use asv_vmem::{parse_maps_line, Backend, MapRequest, PhysicalStore, SimBackend, ViewBuffer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[cfg(all(feature = "mmap", target_os = "linux"))]
use asv_vmem::{MmapBackend, SLOTS_PER_PAGE};

/// A random operation applied identically to both backends.
#[cfg(all(feature = "mmap", target_os = "linux"))]
#[derive(Clone, Debug)]
enum Op {
    /// Write a value into (page, slot).
    Write {
        page: usize,
        slot: usize,
        value: u64,
    },
    /// Map a run of physical pages into the view at a slot.
    MapRun {
        slot: usize,
        phys: usize,
        len: usize,
    },
    /// Truncate the view's mapped prefix.
    Truncate { mapped: usize },
}

/// Applies one op to a backend, returning whether it was accepted.
#[cfg(all(feature = "mmap", target_os = "linux"))]
fn apply<B: Backend>(backend: &B, store: &mut B::Store, view: &mut B::View, op: &Op) -> bool {
    match *op {
        Op::Write { page, slot, value } => {
            store.page_mut(page)[slot] = value;
            true
        }
        Op::MapRun { slot, phys, len } => backend
            .map_run(
                store,
                view,
                MapRequest {
                    slot,
                    phys_page: phys,
                    len,
                },
            )
            .is_ok(),
        Op::Truncate { mapped } => backend.truncate_view(view, mapped).is_ok(),
    }
}

/// Observable state of a (store, view) pair: the materialized mapping table
/// as sorted (slot, physical page) pairs.
#[cfg(all(feature = "mmap", target_os = "linux"))]
fn observable<B: Backend>(backend: &B, store: &B::Store, view: &B::View) -> Vec<(usize, usize)> {
    let table = backend.mapping_table(store, view).unwrap();
    let mut pairs: Vec<(usize, usize)> = table.iter().collect();
    pairs.sort_unstable();
    pairs
}

#[cfg(all(feature = "mmap", target_os = "linux"))]
#[test]
fn sim_and_mmap_backends_expose_identical_mappings() {
    let mut rng = StdRng::seed_from_u64(0xE01);
    for case in 0..32 {
        let store_pages = rng.gen_range(2usize..24);
        let num_ops = rng.gen_range(0usize..48);

        let sim = SimBackend::new();
        let mmap = MmapBackend::new();
        let mut sim_store = sim.create_store(store_pages).unwrap();
        let mut mmap_store = mmap.create_store(store_pages).unwrap();
        let mut sim_view = sim.reserve_view(&sim_store, store_pages).unwrap();
        let mut mmap_view = mmap.reserve_view(&mmap_store, store_pages).unwrap();

        for _ in 0..num_ops {
            let (a, b, c) = (
                rng.gen_range(0usize..64),
                rng.gen_range(0usize..64),
                rng.gen_range(0usize..64),
            );
            let op = match rng.gen_range(0u32..3) {
                0 => Op::Write {
                    page: a % store_pages,
                    slot: 1 + b % (SLOTS_PER_PAGE - 1),
                    value: c as u64,
                },
                1 => Op::MapRun {
                    slot: a % store_pages,
                    phys: b % store_pages,
                    len: 1 + c % 3,
                },
                _ => Op::Truncate {
                    mapped: a % (store_pages + 1),
                },
            };
            let ok_sim = apply(&sim, &mut sim_store, &mut sim_view, &op);
            let ok_mmap = apply(&mmap, &mut mmap_store, &mut mmap_view, &op);
            assert_eq!(
                ok_sim, ok_mmap,
                "case {case}: acceptance differs for {op:?}"
            );
        }

        // Mapping tables agree.
        assert_eq!(
            observable(&sim, &sim_store, &sim_view),
            observable(&mmap, &mmap_store, &mmap_view),
            "case {case}"
        );
        // Store contents agree.
        for p in 0..store_pages {
            assert_eq!(sim_store.page(p), mmap_store.page(p), "page {p} differs");
        }
        // Mapped view slots show the same data wherever both sides consider
        // the slot mapped.
        let table = sim.mapping_table(&sim_store, &sim_view).unwrap();
        let mapped_slots: Vec<usize> = table.iter().map(|(s, _)| s).collect();
        for slot in mapped_slots {
            if slot < sim_view.mapped_pages() && slot < mmap_view.mapped_pages() {
                assert_eq!(sim_view.page(slot), mmap_view.page(slot));
            }
        }
    }
}

#[test]
fn maps_parser_never_panics_on_arbitrary_lines() {
    // Must never panic; errors are fine. Draw lines from a character pool
    // heavy on the delimiters the parser splits on.
    const POOL: &[char] = &[
        'a', 'f', 'z', '0', '7', '9', '-', ':', ' ', '\t', '/', '(', ')', '.', 'ـ', 'é', '🦀', 'x',
        'p', 's', 'w', 'r',
    ];
    let mut rng = StdRng::seed_from_u64(0xE02);
    for _ in 0..500 {
        let len = rng.gen_range(0usize..120);
        let line: String = (0..len)
            .map(|_| POOL[rng.gen_range(0usize..POOL.len())])
            .collect();
        let _ = parse_maps_line(&line);
    }
}

#[test]
fn maps_parser_roundtrips_wellformed_lines() {
    let mut rng = StdRng::seed_from_u64(0xE03);
    for _ in 0..200 {
        let start = rng.gen_range(0usize..0x7fff_ffff);
        let len = rng.gen_range(1usize..0xffff);
        let offset_pages = rng.gen_range(0u64..0xffff);
        let inode = rng.gen_range(0u64..1_000_000);
        let shared = rng.gen_bool(0.5);

        let end = start + len * 4096;
        let perms = if shared { "rw-s" } else { "rw-p" };
        let line = format!(
            "{start:x}-{end:x} {perms} {:08x} 00:01 {inode} /memfd:asv (deleted)",
            offset_pages * 4096
        );
        let entry = parse_maps_line(&line).unwrap();
        assert_eq!(entry.start, start);
        assert_eq!(entry.end, end);
        assert_eq!(entry.offset, offset_pages * 4096);
        assert_eq!(entry.inode, inode);
        assert_eq!(entry.is_shared_file_mapping(), shared && inode != 0);
    }
}

#[test]
fn writes_after_remapping_are_visible_through_both_backends() {
    // Regression-style scenario: map, write, remap elsewhere, write again.
    fn for_each_backend<B: Backend>(backend: &B) {
        let mut store = backend.create_store(4).unwrap();
        let mut view = backend.reserve_view(&store, 4).unwrap();
        backend
            .map_run(&store, &mut view, MapRequest::single(0, 1))
            .unwrap();
        store.page_mut(1)[5] = 111;
        assert_eq!(view.page(0)[5], 111);
        backend
            .map_run(&store, &mut view, MapRequest::single(0, 2))
            .unwrap();
        store.page_mut(2)[5] = 222;
        assert_eq!(view.page(0)[5], 222);
        // The old physical page keeps its data.
        assert_eq!(store.page(1)[5], 111);
    }

    for_each_backend(&SimBackend::new());
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    for_each_backend(&MmapBackend::new());
}

#[test]
fn many_small_views_over_one_store() {
    // A store can back many simultaneously live views (the whole point of
    // the design); exercise a fan-out of 64 views on both backends.
    fn run<B: Backend>(backend: &B) {
        let mut store = backend.create_store(64).unwrap();
        for p in 0..64 {
            store.page_mut(p)[0] = p as u64;
        }
        let mut views = Vec::new();
        for i in 0..64usize {
            let mut v = backend.reserve_view(&store, 64).unwrap();
            backend
                .map_run(&store, &mut v, MapRequest::single(0, i))
                .unwrap();
            views.push(v);
        }
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.page(0)[0], i as u64);
        }
    }
    run(&SimBackend::new());
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    run(&MmapBackend::new());
}
