//! Backend equivalence and robustness tests.
//!
//! The simulation backend exists so that every algorithm of the upper layers
//! can be tested deterministically; that is only sound if it behaves exactly
//! like the mmap backend. These tests drive both backends through identical
//! random operation sequences and require identical observable state, and
//! additionally fuzz the `/proc/self/maps` parser.

use asv_vmem::{
    parse_maps_line, Backend, MapRequest, MmapBackend, PhysicalStore, SimBackend, ViewBuffer,
    SLOTS_PER_PAGE,
};
use proptest::prelude::*;

/// A random operation applied identically to both backends.
#[derive(Clone, Debug)]
enum Op {
    /// Write a value into (page, slot).
    Write { page: usize, slot: usize, value: u64 },
    /// Map a run of physical pages into the view at a slot.
    MapRun { slot: usize, phys: usize, len: usize },
    /// Truncate the view's mapped prefix.
    Truncate { mapped: usize },
}

fn arb_op(store_pages: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..store_pages, 1..SLOTS_PER_PAGE, any::<u64>())
            .prop_map(|(page, slot, value)| Op::Write { page, slot, value }),
        (0..store_pages, 0..store_pages, 1usize..4)
            .prop_map(|(slot, phys, len)| Op::MapRun { slot, phys, len }),
        (0..store_pages).prop_map(|mapped| Op::Truncate { mapped }),
    ]
}

/// Applies one op to a backend, returning whether it was accepted.
fn apply<B: Backend>(
    backend: &B,
    store: &mut B::Store,
    view: &mut B::View,
    op: &Op,
) -> bool {
    match *op {
        Op::Write { page, slot, value } => {
            store.page_mut(page)[slot] = value;
            true
        }
        Op::MapRun { slot, phys, len } => backend
            .map_run(store, view, MapRequest { slot, phys_page: phys, len })
            .is_ok(),
        Op::Truncate { mapped } => backend.truncate_view(view, mapped).is_ok(),
    }
}

/// Observable state of a (store, view) pair: page ids visible through the
/// view slots that are mapped on *both* backends, plus the mapping tables.
fn observable<B: Backend>(backend: &B, store: &B::Store, view: &B::View) -> Vec<(usize, usize)> {
    let table = backend.mapping_table(store, view).unwrap();
    let mut pairs: Vec<(usize, usize)> = table.iter().collect();
    pairs.sort_unstable();
    pairs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sim_and_mmap_backends_expose_identical_mappings(
        store_pages in 2usize..24,
        ops in prop::collection::vec((0usize..64, 0usize..64, 0usize..64, 0u8..3), 0..48),
    ) {
        let sim = SimBackend::new();
        let mmap = MmapBackend::new();
        let mut sim_store = sim.create_store(store_pages).unwrap();
        let mut mmap_store = mmap.create_store(store_pages).unwrap();
        let mut sim_view = sim.reserve_view(&sim_store, store_pages).unwrap();
        let mut mmap_view = mmap.reserve_view(&mmap_store, store_pages).unwrap();

        for (a, b, c, kind) in ops {
            let op = match kind {
                0 => Op::Write { page: a % store_pages, slot: 1 + b % (SLOTS_PER_PAGE - 1), value: c as u64 },
                1 => Op::MapRun { slot: a % store_pages, phys: b % store_pages, len: 1 + c % 3 },
                _ => Op::Truncate { mapped: a % (store_pages + 1) },
            };
            let ok_sim = apply(&sim, &mut sim_store, &mut sim_view, &op);
            let ok_mmap = apply(&mmap, &mut mmap_store, &mut mmap_view, &op);
            prop_assert_eq!(ok_sim, ok_mmap, "acceptance differs for {:?}", op);
        }

        // Mapping tables agree.
        prop_assert_eq!(
            observable(&sim, &sim_store, &sim_view),
            observable(&mmap, &mmap_store, &mmap_view)
        );
        // Store contents agree.
        for p in 0..store_pages {
            prop_assert_eq!(sim_store.page(p), mmap_store.page(p), "page {} differs", p);
        }
        // Mapped view slots show the same data wherever both sides consider
        // the slot mapped.
        let table = sim.mapping_table(&sim_store, &sim_view).unwrap();
        let mapped_slots: Vec<usize> = table.iter().map(|(s, _)| s).collect();
        for slot in mapped_slots {
            if slot < sim_view.mapped_pages() && slot < mmap_view.mapped_pages() {
                prop_assert_eq!(sim_view.page(slot), mmap_view.page(slot));
            }
        }
    }

    #[test]
    fn maps_parser_never_panics_on_arbitrary_lines(line in "\\PC{0,120}") {
        // Must never panic; errors are fine.
        let _ = parse_maps_line(&line);
    }

    #[test]
    fn maps_parser_roundtrips_wellformed_lines(
        start in 0usize..0x7fff_ffff,
        len in 1usize..0xffff,
        offset_pages in 0u64..0xffff,
        inode in 0u64..1_000_000,
        shared in any::<bool>(),
    ) {
        let end = start + len * 4096;
        let perms = if shared { "rw-s" } else { "rw-p" };
        let line = format!(
            "{start:x}-{end:x} {perms} {:08x} 00:01 {inode} /memfd:asv (deleted)",
            offset_pages * 4096
        );
        let entry = parse_maps_line(&line).unwrap();
        prop_assert_eq!(entry.start, start);
        prop_assert_eq!(entry.end, end);
        prop_assert_eq!(entry.offset, offset_pages * 4096);
        prop_assert_eq!(entry.inode, inode);
        prop_assert_eq!(entry.is_shared_file_mapping(), shared && inode != 0);
    }
}

#[test]
fn writes_after_remapping_are_visible_through_both_backends() {
    // Regression-style scenario: map, write, remap elsewhere, write again.
    let sim = SimBackend::new();
    let mmap = MmapBackend::new();
    for_each_backend(&sim);
    for_each_backend(&mmap);

    fn for_each_backend<B: Backend>(backend: &B) {
        let mut store = backend.create_store(4).unwrap();
        let mut view = backend.reserve_view(&store, 4).unwrap();
        backend
            .map_run(&store, &mut view, MapRequest::single(0, 1))
            .unwrap();
        store.page_mut(1)[5] = 111;
        assert_eq!(view.page(0)[5], 111);
        backend
            .map_run(&store, &mut view, MapRequest::single(0, 2))
            .unwrap();
        store.page_mut(2)[5] = 222;
        assert_eq!(view.page(0)[5], 222);
        // The old physical page keeps its data.
        assert_eq!(store.page(1)[5], 111);
    }
}

#[test]
fn many_small_views_over_one_store() {
    // A store can back many simultaneously live views (the whole point of
    // the design); exercise a fan-out of 64 views on both backends.
    fn run<B: Backend>(backend: &B) {
        let mut store = backend.create_store(64).unwrap();
        for p in 0..64 {
            store.page_mut(p)[0] = p as u64;
        }
        let mut views = Vec::new();
        for i in 0..64usize {
            let mut v = backend.reserve_view(&store, 64).unwrap();
            backend
                .map_run(&store, &mut v, MapRequest::single(0, i))
                .unwrap();
            views.push(v);
        }
        for (i, v) in views.iter().enumerate() {
            assert_eq!(v.page(0)[0], i as u64);
        }
    }
    run(&SimBackend::new());
    run(&MmapBackend::new());
}
