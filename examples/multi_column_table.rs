//! Multi-column adaptive table: the table representation of Figure 1.
//!
//! Every column of the table carries its own physical column, full view and
//! adaptively created partial views. Conjunctive queries route each
//! predicate to the corresponding column's views and intersect the
//! qualifying rows.
//!
//! Run with:
//! ```text
//! cargo run --release --example multi_column_table [sim|mmap]
//! ```

use adaptive_storage_views::core::AdaptiveTable;
use adaptive_storage_views::prelude::*;

fn main() {
    let backend = AnyBackend::from_cli_arg();
    let pages = 2_048;
    // Three "sensor" columns over the same rows: a sine-shaped temperature
    // curve, a linearly drifting pressure reading and a sparse error code.
    let temperature = Distribution::sine().generate_pages(pages, 1);
    let pressure = Distribution::linear().generate_pages(pages, 2);
    let error_code = Distribution::sparse().generate_pages(pages, 3);

    let mut table: AdaptiveTable<AnyBackend> = AdaptiveTable::new("readings");
    table
        .add_column(
            "temperature",
            backend.clone(),
            &temperature,
            AdaptiveConfig::default(),
        )
        .expect("temperature column");
    table
        .add_column(
            "pressure",
            backend.clone(),
            &pressure,
            AdaptiveConfig::default(),
        )
        .expect("pressure column");
    table
        .add_column(
            "error_code",
            backend.clone(),
            &error_code,
            AdaptiveConfig::default(),
        )
        .expect("error_code column");
    println!(
        "table '{}' with {} columns x {} rows\n",
        table.name(),
        table.num_columns(),
        table.num_rows()
    );

    // Single-column queries warm up per-column views.
    for (column, low, high) in [
        ("temperature", 20_000_000u64, 40_000_000u64),
        ("pressure", 50_000_000, 60_000_000),
        ("error_code", 1, 100_000_000),
    ] {
        let outcome = table
            .query_column(column, &RangeQuery::new(low, high))
            .expect("query");
        println!(
            "select * where {column} in [{low}, {high}]: {} rows, scanned {} pages, {} view(s) used",
            outcome.count, outcome.scanned_pages, outcome.num_views_used()
        );
    }

    // A conjunctive query across all three columns.
    let conjunctive = table
        .query_conjunctive(&[
            ("temperature", RangeQuery::new(20_000_000, 40_000_000)),
            ("pressure", RangeQuery::new(40_000_000, 70_000_000)),
            ("error_code", RangeQuery::new(1, 100_000_000)),
        ])
        .expect("conjunctive query");
    println!(
        "\nconjunctive query over 3 columns: {} matching rows",
        conjunctive.rows.len()
    );
    // The planner reorders predicates by estimated cardinality:
    // `executed_order` maps each executed step back to its input predicate.
    let names = ["temperature", "pressure", "error_code"];
    for (outcome, &input_idx) in conjunctive
        .per_column
        .iter()
        .zip(&conjunctive.executed_order)
    {
        let name = names[input_idx];
        println!(
            "  predicate on {name:<12} [{:?}]: {:>8} surviving rows from {:>5} touched pages using {} view(s)",
            outcome.executed,
            outcome.count,
            outcome.scanned_pages,
            outcome.num_views_used()
        );
    }

    // The per-column view indexes that emerged along the way.
    println!("\nper-column partial views:");
    for name in table.column_names() {
        let col = table.column(name).expect("column");
        println!(
            "  {name:<12}: {} partial view(s), {} pages indexed in total",
            col.views().num_partial_views(),
            col.views().total_indexed_pages()
        );
    }
}
