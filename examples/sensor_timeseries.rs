//! Sensor time-series scenario: the workload the paper's introduction
//! motivates — clustered (sine-shaped) sensor readings queried by value
//! range, where the adaptive storage layer gradually builds up partial views
//! and routes queries to them.
//!
//! This is a miniature of the Figure 4 experiment: a shuffled sequence of
//! range queries of decreasing width, answered once by the adaptive layer
//! and once with full scans, reporting the accumulated response times.
//!
//! Run with:
//! ```text
//! cargo run --release --example sensor_timeseries [sim|mmap]
//! ```

use adaptive_storage_views::core::SequenceStats;
use adaptive_storage_views::prelude::*;
use adaptive_storage_views::workloads::SweepSpec;

fn main() {
    let backend = AnyBackend::from_cli_arg();
    let pages = 8_192; // ≈ 32 MiB of sensor readings
    let dist = Distribution::sine();
    let values = dist.generate_pages(pages, 7);

    let spec = SweepSpec {
        num_queries: 120,
        ..SweepSpec::default()
    };
    let queries: Vec<RangeQuery> = QueryWorkload::new(99)
        .selectivity_sweep(&spec)
        .into_iter()
        .map(RangeQuery::from_range)
        .collect();

    // Adaptive run (single-view routing, paper defaults).
    let mut adaptive = AdaptiveColumn::from_values(backend, &values, AdaptiveConfig::default())
        .expect("adaptive column");
    let mut adaptive_stats = SequenceStats::new();
    let mut fullscan_stats = SequenceStats::new();

    for q in &queries {
        let outcome = adaptive.query(q).expect("query");
        let baseline = adaptive.full_scan(q);
        assert_eq!(outcome.count, baseline.count);
        adaptive_stats.record(&outcome);
        fullscan_stats.record(&baseline);
    }

    println!(
        "sensor time-series workload ({} pages, {} queries)",
        pages,
        queries.len()
    );
    println!(
        "  full scans only       : {:>8.2} s accumulated ({:>7.2} ms mean)",
        fullscan_stats.accumulated_seconds(),
        fullscan_stats.mean_ms()
    );
    println!(
        "  adaptive view routing : {:>8.2} s accumulated ({:>7.2} ms mean)",
        adaptive_stats.accumulated_seconds(),
        adaptive_stats.mean_ms()
    );
    println!(
        "  speedup               : {:>8.2}x",
        fullscan_stats.accumulated_seconds() / adaptive_stats.accumulated_seconds().max(1e-9)
    );
    println!(
        "  partial views created : {:>8} (of {} allowed), {} candidate views retained",
        adaptive.views().num_partial_views(),
        adaptive.config().max_views,
        adaptive_stats.views_retained()
    );
    println!(
        "  pages scanned         : {:>8} adaptive vs {} full scans",
        adaptive_stats.total_scanned_pages(),
        fullscan_stats.total_scanned_pages()
    );

    // Show how the scan effort drops over the sequence (first vs last decile).
    let records = adaptive_stats.records();
    let decile = records.len() / 10;
    let early: usize = records[..decile].iter().map(|r| r.scanned_pages).sum();
    let late: usize = records[records.len() - decile..]
        .iter()
        .map(|r| r.scanned_pages)
        .sum();
    println!(
        "  early-phase scan work : {:>8} pages over the first {decile} queries",
        early
    );
    println!(
        "  late-phase scan work  : {:>8} pages over the last {decile} queries",
        late
    );
}
