//! Virtual views versus explicit indexing — a miniature of the Figure 3
//! micro-benchmark: the same uniform column is indexed once with each
//! explicit variant (zone map, bitmap, vector of page ids), once as a
//! contiguous physical copy, and once as a virtual partial view; all five
//! answer the same query after a batch of random updates.
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_vs_explicit [sim|mmap]
//! ```

use adaptive_storage_views::baselines::{
    BitmapIndex, PageIdVectorIndex, PhysicalScanBaseline, RangeIndex, VirtualViewIndex,
    ZoneMapIndex,
};
use adaptive_storage_views::core::CreationOptions;
use adaptive_storage_views::prelude::*;
use adaptive_storage_views::util::Timer;
use adaptive_storage_views::workloads::DEFAULT_MAX_VALUE;

fn measure(label: &str, index: &mut dyn RangeIndex, writes: &[(usize, u64)], query: &ValueRange) {
    index.apply_writes(writes);
    // Warm-up + correctness pass.
    let reference = index.query(query);
    let timer = Timer::start();
    let runs = 5;
    for _ in 0..runs {
        let answer = index.query(query);
        assert_eq!(answer.count, reference.count);
    }
    let ms = timer.elapsed_ms() / runs as f64;
    println!(
        "  {label:<24} {:>9.3} ms   ({} qualifying rows on {} indexed pages)",
        ms, reference.count, reference.pages_scanned
    );
}

fn main() {
    let backend = AnyBackend::from_cli_arg();
    let pages = 8_192;
    let dist = Distribution::Uniform {
        max_value: DEFAULT_MAX_VALUE,
    };
    let values = dist.generate_pages(pages, 3);
    let writes = UpdateWorkload::new(5).uniform_writes(10_000, values.len(), DEFAULT_MAX_VALUE);

    // Index all pages containing values in [0, k]; query the lower half.
    let k = 20_000;
    let index_range = ValueRange::new(0, k);
    let query = ValueRange::new(0, k / 2);
    println!(
        "uniform column of {pages} pages; index range [0, {k}], query [0, {}]\n",
        k / 2
    );

    let mut zonemap = ZoneMapIndex::build(&values, index_range);
    measure("explicit zone map", &mut zonemap, &writes, &query);

    let mut bitmap = BitmapIndex::build(backend.clone(), &values, index_range).expect("bitmap");
    measure("explicit bitmap", &mut bitmap, &writes, &query);

    let mut pageids =
        PageIdVectorIndex::build(backend.clone(), &values, index_range).expect("page ids");
    measure("explicit page-id vector", &mut pageids, &writes, &query);

    let mut physical = PhysicalScanBaseline::build(&values, index_range);
    measure("physical scan (optimum)", &mut physical, &writes, &query);

    let mut virtual_view =
        VirtualViewIndex::build(backend.clone(), &values, index_range, &CreationOptions::ALL)
            .expect("virtual view");
    measure(
        "virtual view (this paper)",
        &mut virtual_view,
        &writes,
        &query,
    );

    println!("\nThe virtual view scans only the qualifying pages through one");
    println!("contiguous virtual memory range — no per-page indirection in");
    println!("user space — which is why it tracks the physical-scan optimum.");
}
