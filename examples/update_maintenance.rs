//! Update handling: keeping partial views aligned with a changing column —
//! a miniature of the Figure 7 experiment.
//!
//! Five partial views are created over a column; batches of random updates
//! of increasing size are applied through the storage layer and the views
//! are re-aligned batch-wise. The cost is split into the time to materialize
//! the memory mappings (parsing `/proc/self/maps` on the mmap backend) and
//! the time to add/remove pages, and compared against rebuilding all views
//! from scratch.
//!
//! Run with:
//! ```text
//! cargo run --release --example update_maintenance [sim|mmap]
//! ```

use adaptive_storage_views::core::{
    align_views_after_updates, build_view_for_range, CreationOptions, ViewSet,
};
use adaptive_storage_views::prelude::*;
use adaptive_storage_views::util::Timer;

fn build_views<B: Backend>(column: &Column<B>, ranges: &[ValueRange]) -> ViewSet<B> {
    let mut views = ViewSet::new(ranges.len());
    for r in ranges {
        let (buffer, _) = build_view_for_range(column, r, &CreationOptions::ALL).expect("view");
        views.insert_unchecked(*r, buffer);
    }
    views
}

fn main() {
    let backend = AnyBackend::from_cli_arg();
    let pages = 8_192;
    let dist = Distribution::Sine {
        max_value: u64::MAX,
        period_pages: 100,
    };
    let values = dist.generate_pages(pages, 21);

    // Five views, each covering 1/1024 of the value domain (as in §3.4).
    let width = u64::MAX / 1024;
    let ranges: Vec<ValueRange> = (0..5u64)
        .map(|i| {
            let start = i * (u64::MAX / 5);
            ValueRange::new(start, start + width - 1)
        })
        .collect();

    println!("column: {pages} pages, sine distribution over the full u64 domain");
    println!("maintaining 5 partial views, each covering 1/1024 of the value range\n");
    println!(
        "{:>10}  {:>10}  {:>10}  {:>10}  {:>7}  {:>7}  {:>11}",
        "batch", "parse ms", "align ms", "total ms", "added", "removed", "rebuild ms"
    );

    for batch_size in [100usize, 1_000, 10_000, 100_000] {
        // Fresh column and views per batch size, so runs are comparable.
        let mut column = Column::from_values(backend.clone(), &values).expect("column");
        let mut views = build_views(&column, &ranges);

        let writes = UpdateWorkload::new(batch_size as u64).uniform_writes(
            batch_size,
            column.num_rows(),
            u64::MAX,
        );
        let updates = column.write_batch(&writes);
        let stats = align_views_after_updates(&column, &mut views, &updates).expect("alignment");

        let rebuild_timer = Timer::start();
        let _rebuilt = build_views(&column, &ranges);
        let rebuild_ms = rebuild_timer.elapsed_ms();

        println!(
            "{:>10}  {:>10.2}  {:>10.2}  {:>10.2}  {:>7}  {:>7}  {:>11.2}",
            batch_size,
            stats.parse_time.as_secs_f64() * 1e3,
            stats.align_time.as_secs_f64() * 1e3,
            stats.total_time().as_secs_f64() * 1e3,
            stats.pages_added,
            stats.pages_removed,
            rebuild_ms
        );
    }

    println!("\nAligning views with a batch of updates is cheaper than rebuilding");
    println!("them from scratch unless the batch rewrites a large fraction of the");
    println!("column (the crossover the paper reports for very large batches).");
}
