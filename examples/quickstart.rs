//! Quickstart: materialize a column, fire range queries, watch partial
//! views appear and accelerate later queries.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart [sim|mmap]
//! ```

use adaptive_storage_views::prelude::*;

fn main() {
    let backend = AnyBackend::from_cli_arg();
    // 1. Generate some clustered data (values correlated with their page) —
    //    the kind of time-series/sensor data the paper targets — and
    //    materialize it as a physical column backed by a main-memory file.
    let dist = Distribution::sine();
    let values = dist.generate_pages(4_096, 42); // 4096 pages ≈ 16 MiB
    let column = Column::from_values(backend.clone(), &values).expect("column");
    println!(
        "materialized column: {} rows on {} pages ({} MiB) on the '{}' backend",
        column.num_rows(),
        column.num_pages(),
        column.num_pages() * 4096 / (1024 * 1024),
        backend.name()
    );

    // 2. Attach the adaptive storage-view layer (single-view routing, up to
    //    100 partial views, both creation optimizations — the paper's
    //    default setup).
    let mut adaptive = AdaptiveColumn::new(column, AdaptiveConfig::default()).expect("adaptive");

    // 3. Fire a few range queries. Every query is answered exactly and, as a
    //    side product, may leave behind a partial virtual view that maps
    //    only the qualifying physical pages.
    let queries = [
        RangeQuery::new(10_000_000, 30_000_000),
        RangeQuery::new(12_000_000, 25_000_000), // subsumed by the first view
        RangeQuery::new(70_000_000, 90_000_000),
        RangeQuery::new(75_000_000, 80_000_000),
    ];
    for (i, q) in queries.iter().enumerate() {
        let outcome = adaptive.query(q).expect("query");
        let baseline = adaptive.full_scan(q);
        println!(
            "query {i}: [{:>9}, {:>9}] -> {:>7} rows | scanned {:>4}/{} pages | {:>2} view(s) | {:.2} ms (full scan {:.2} ms) | candidate view: {:?}",
            q.low(),
            q.high(),
            outcome.count,
            outcome.scanned_pages,
            adaptive.column().num_pages(),
            outcome.num_views_used(),
            outcome.elapsed_ms(),
            baseline.elapsed.as_secs_f64() * 1e3,
            outcome.view_maintenance,
        );
        assert_eq!(
            outcome.count, baseline.count,
            "adaptive answer must be exact"
        );
    }

    // 4. Inspect the view index that emerged as a side product.
    println!("\npartial views after the sequence:");
    for (idx, view) in adaptive.views().iter() {
        println!(
            "  view {idx}: covers {} and maps {} physical pages",
            view.range(),
            view.num_pages()
        );
    }

    // 5. Updates go through the storage layer; views are re-aligned in
    //    batches.
    let updates = adaptive.write_batch(&[(0, 15_000_000), (1, 99_999_999)]);
    let stats = adaptive.align_views(&updates).expect("alignment");
    println!(
        "\napplied {} updates: {} page(s) added to views, {} removed (parse {:.3} ms, align {:.3} ms)",
        updates.len(),
        stats.pages_added,
        stats.pages_removed,
        stats.parse_time.as_secs_f64() * 1e3,
        stats.align_time.as_secs_f64() * 1e3,
    );
}
