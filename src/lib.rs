//! # Adaptive Storage Views in Virtual Memory
//!
//! A Rust implementation of the adaptive storage layer described in
//! *"Towards Adaptive Storage Views in Virtual Memory"* (Schuhknecht &
//! Henneberg, CIDR 2023): instead of stacking an indexing layer on top of a
//! storage layer, the storage layer itself exposes **virtual memory views**
//! onto subsets of the physically materialized database. Partial views are
//! created adaptively as a side-product of query processing, queries are
//! routed to the most fitting view(s), and views are kept consistent under
//! batched updates — all by manipulating virtual-memory mappings at page
//! granularity (memory rewiring).
//!
//! This crate is a thin facade that re-exports the workspace crates:
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`vmem`] | `asv-vmem` | rewiring substrate: main-memory files, view buffers, `/proc/self/maps` introspection, a portable simulation backend, and the runtime-selectable [`AnyBackend`](vmem::AnyBackend) |
//! | [`storage`] | `asv-storage` | page layout, physical columns, tables, update batches |
//! | [`core`] | `asv-core` | virtual views, query routing, adaptive view maintenance, optimized view creation, batched update alignment |
//! | [`baselines`] | `asv-baselines` | explicit-index baselines (zone map, bitmap, page-id vector) and scan baselines |
//! | [`workloads`] | `asv-workloads` | data distributions, query sequences and update batches used in the paper's evaluation |
//! | [`util`] | `asv-util` | bitvector, bidirectional map, value ranges |
//!
//! ## Quick start
//!
//! ```
//! use adaptive_storage_views::prelude::*;
//!
//! // 1. Materialize a column (here: on the portable simulation backend;
//! //    use `AnyBackend::default_backend()` to pick real virtual-memory
//! //    rewiring wherever the platform supports it).
//! let values: Vec<u64> = (0..100_000u64).map(|i| (i * 37) % 1_000_000).collect();
//! let column = Column::from_values(SimBackend::new(), &values).unwrap();
//!
//! // 2. Attach the adaptive view layer.
//! let mut adaptive = AdaptiveColumn::new(column, AdaptiveConfig::default()).unwrap();
//!
//! // 3. Fire range queries: each query is answered from the best view(s)
//! //    and leaves behind a partial view that accelerates future queries.
//! let result = adaptive.query(&RangeQuery::new(1_000, 50_000)).unwrap();
//! assert_eq!(result.count, values.iter().filter(|&&v| (1_000..=50_000).contains(&v)).count() as u64);
//! assert!(adaptive.views().num_partial_views() >= 1);
//! ```

pub use asv_baselines as baselines;
pub use asv_core as core;
pub use asv_storage as storage;
pub use asv_util as util;
pub use asv_vmem as vmem;
pub use asv_workloads as workloads;

/// Commonly used types, re-exported for convenience.
pub mod prelude {
    pub use asv_core::{
        AdaptiveColumn, AdaptiveConfig, AdaptiveTable, ConjunctiveOutcome, CreationOptions,
        PlannerConfig, QueryOutcome, RangeQuery, RoutingMode, ViewSet,
    };
    pub use asv_storage::{Column, Table, Update};
    pub use asv_util::ValueRange;
    #[cfg(all(feature = "mmap", target_os = "linux"))]
    pub use asv_vmem::MmapBackend;
    pub use asv_vmem::{AnyBackend, Backend, SimBackend};
    pub use asv_workloads::{Distribution, QueryWorkload, UpdateWorkload};
}
