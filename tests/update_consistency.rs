//! Update-path integration tests: writes through the storage layer, batched
//! view alignment, and queries afterwards must stay consistent across the
//! whole stack and across both backends.

use adaptive_storage_views::core::{
    align_views_after_updates, build_view_for_range, rebuild_all_views, CreationOptions, ViewSet,
};
use adaptive_storage_views::prelude::*;
use adaptive_storage_views::storage::VALUES_PER_PAGE;
use adaptive_storage_views::vmem::Backend;

const PAGES: usize = 256;

fn reference(values: &[u64], range: &ValueRange) -> (u64, u128) {
    values
        .iter()
        .filter(|v| range.contains(**v))
        .fold((0u64, 0u128), |(c, s), &v| (c + 1, s + v as u128))
}

/// The pages a view *should* index after all updates.
fn expected_pages<B: Backend>(column: &Column<B>, range: &ValueRange) -> Vec<usize> {
    (0..column.num_pages())
        .filter(|&p| {
            column
                .page_ref(p)
                .values()
                .iter()
                .any(|v| range.contains(*v))
        })
        .collect()
}

fn view_pages<B: Backend>(column: &Column<B>, views: &ViewSet<B>, idx: usize) -> Vec<usize> {
    let table = column
        .backend()
        .mapping_table(column.store(), views.partial_view(idx).unwrap().buffer())
        .unwrap();
    table.phys_pages_sorted()
}

fn alignment_equals_rebuild<B: Backend>(backend: B) {
    let dist = Distribution::sine();
    let mut values = dist.generate_pages(PAGES, 0x0DD);
    let ranges = [
        ValueRange::new(0, 5_000_000),
        ValueRange::new(40_000_000, 60_000_000),
        ValueRange::new(99_000_000, 100_000_000),
    ];
    let mut column = Column::from_values(backend, &values).unwrap();
    let mut views = ViewSet::new(8);
    for r in &ranges {
        let (buf, _) = build_view_for_range(&column, r, &CreationOptions::ALL).unwrap();
        views.insert_unchecked(*r, buf);
    }

    // Three successive batches, each aligned individually.
    for batch_idx in 0..3u64 {
        let writes =
            UpdateWorkload::new(batch_idx).uniform_writes(1_500, column.num_rows(), 100_000_000);
        for &(row, v) in &writes {
            values[row] = v;
        }
        let updates = column.write_batch(&writes);
        align_views_after_updates(&column, &mut views, &updates).unwrap();

        for (i, r) in ranges.iter().enumerate() {
            assert_eq!(
                view_pages(&column, &views, i),
                expected_pages(&column, r),
                "batch {batch_idx}: view {i} misaligned"
            );
            // Scanning the view yields exactly the qualifying values.
            let view = views.partial_view(i).unwrap();
            let mut count = 0u64;
            let mut sum = 0u128;
            for raw in adaptive_storage_views::vmem::ViewBuffer::iter_pages(view.buffer()) {
                let page = column.wrap_view_page(raw);
                let res = page.scan_filter(r);
                count += res.count;
                sum += res.sum;
            }
            let (exp_count, exp_sum) = reference(&values, r);
            assert_eq!((count, sum), (exp_count, exp_sum), "view {i} content wrong");
        }
    }

    // A full rebuild produces the same page sets as incremental alignment.
    rebuild_all_views(&column, &mut views, &CreationOptions::ALL).unwrap();
    for (i, r) in ranges.iter().enumerate() {
        assert_eq!(view_pages(&column, &views, i), expected_pages(&column, r));
    }
}

#[test]
fn alignment_equals_rebuild_on_sim_backend() {
    alignment_equals_rebuild(SimBackend::new());
}

#[cfg(all(feature = "mmap", target_os = "linux"))]
#[test]
fn alignment_equals_rebuild_on_mmap_backend() {
    alignment_equals_rebuild(MmapBackend::new());
}

#[test]
fn adaptive_column_stays_exact_under_interleaved_updates_and_queries() {
    let dist = Distribution::linear();
    let mut values = dist.generate_pages(PAGES, 0xF00D);
    let mut adaptive = AdaptiveColumn::from_values(
        AnyBackend::default_backend(),
        &values,
        AdaptiveConfig::default().with_max_views(16),
    )
    .unwrap();

    for round in 0..5u64 {
        // A few queries build/refresh views.
        for i in 0..5u64 {
            let lo = (round * 13 + i * 7) * 1_000_000 % 90_000_000;
            let q = RangeQuery::new(lo, lo + 5_000_000);
            let outcome = adaptive.query(&q).unwrap();
            let (count, sum) = reference(&values, q.range());
            assert_eq!((outcome.count, outcome.sum), (count, sum), "round {round}");
        }
        // Then a batch of updates lands and views are re-aligned.
        let writes = UpdateWorkload::new(round).uniform_writes(800, values.len(), 100_000_000);
        for &(row, v) in &writes {
            values[row] = v;
        }
        let updates = adaptive.write_batch(&writes);
        adaptive.align_views(&updates).unwrap();
    }

    // Final verification across a spread of ranges.
    for lo in (0..90_000_000u64).step_by(10_000_000) {
        let q = RangeQuery::new(lo, lo + 9_999_999);
        let outcome = adaptive.query(&q).unwrap();
        let (count, sum) = reference(&values, q.range());
        assert_eq!((outcome.count, outcome.sum), (count, sum));
    }
}

#[test]
fn updates_on_page_boundaries_are_handled() {
    // Rows at page boundaries (first/last slot of a page, last row of the
    // column) exercise the row → (page, slot) arithmetic end to end.
    let values: Vec<u64> = (0..(3 * VALUES_PER_PAGE + 17) as u64).collect();
    let range = ValueRange::new(1_000_000, 2_000_000);
    let mut column = Column::from_values(SimBackend::new(), &values).unwrap();
    let mut views = ViewSet::new(4);
    let (buf, _) = build_view_for_range(&column, &range, &CreationOptions::ALL).unwrap();
    views.insert_unchecked(range, buf);
    assert_eq!(views.partial_view(0).unwrap().num_pages(), 0);

    let boundary_rows = [
        0usize,
        VALUES_PER_PAGE - 1,
        VALUES_PER_PAGE,
        2 * VALUES_PER_PAGE - 1,
        3 * VALUES_PER_PAGE + 16,
    ];
    let writes: Vec<(usize, u64)> = boundary_rows.iter().map(|&r| (r, 1_500_000)).collect();
    let updates = column.write_batch(&writes);
    let stats = align_views_after_updates(&column, &mut views, &updates).unwrap();
    // The boundary rows touch physical pages 0, 1 and 3.
    assert_eq!(stats.pages_added, 3);
    assert_eq!(
        view_pages(&column, &views, 0),
        expected_pages(&column, &range)
    );
}
