//! Cross-variant equivalence: every indexing variant (explicit baselines,
//! physical scan, virtual view, adaptive layer, plain full scan) must
//! produce identical answers for identical workloads.

use adaptive_storage_views::baselines::{
    BitmapIndex, PageIdVectorIndex, PhysicalScanBaseline, RangeIndex, VirtualViewIndex,
    ZoneMapIndex,
};
use adaptive_storage_views::core::CreationOptions;
use adaptive_storage_views::prelude::*;
use adaptive_storage_views::workloads::DEFAULT_MAX_VALUE;

const PAGES: usize = 256;

fn reference(values: &[u64], range: &ValueRange) -> (u64, u128) {
    values
        .iter()
        .filter(|v| range.contains(**v))
        .fold((0u64, 0u128), |(c, s), &v| (c + 1, s + v as u128))
}

fn all_variants_agree(dist: &Distribution, k: u64, writes: &[(usize, u64)]) {
    let values = dist.generate_pages(PAGES, 0xBA5E);
    let index_range = ValueRange::new(0, k);
    let query = ValueRange::new(0, k / 2);

    let mut variants: Vec<Box<dyn RangeIndex>> = vec![
        Box::new(ZoneMapIndex::build(&values, index_range)),
        Box::new(BitmapIndex::build(SimBackend::new(), &values, index_range).unwrap()),
        Box::new(PageIdVectorIndex::build(SimBackend::new(), &values, index_range).unwrap()),
        Box::new(PhysicalScanBaseline::build(&values, index_range)),
        Box::new(
            VirtualViewIndex::build(
                SimBackend::new(),
                &values,
                index_range,
                &CreationOptions::ALL,
            )
            .unwrap(),
        ),
    ];
    // On Linux, additionally cross-check the virtual view on the real
    // rewiring backend (the AnyBackend default there).
    #[cfg(target_os = "linux")]
    variants.push(Box::new(
        VirtualViewIndex::build(
            AnyBackend::default_backend(),
            &values,
            index_range,
            &CreationOptions::NONE,
        )
        .unwrap(),
    ));

    // Expected answer: apply the writes to a plain copy and filter.
    let mut updated = values.clone();
    for &(row, v) in writes {
        updated[row] = v;
    }
    let (exp_count, exp_sum) = reference(&updated, &query);

    for variant in &mut variants {
        variant.apply_writes(writes);
        let answer = variant.query(&query);
        assert_eq!(
            (answer.count, answer.sum),
            (exp_count, exp_sum),
            "variant {} disagrees for {} / k={k}",
            variant.name(),
            dist.name()
        );
    }
}

#[test]
fn variants_agree_without_updates() {
    for dist in [Distribution::uniform(), Distribution::sine()] {
        for k in [2_000u64, 20_000, 200_000] {
            all_variants_agree(&dist, k, &[]);
        }
    }
}

#[test]
fn variants_agree_after_random_updates() {
    let values_len = PAGES * adaptive_storage_views::storage::VALUES_PER_PAGE;
    for dist in [Distribution::uniform(), Distribution::linear()] {
        let writes = UpdateWorkload::new(77).uniform_writes(2_000, values_len, DEFAULT_MAX_VALUE);
        all_variants_agree(&dist, 50_000, &writes);
    }
}

#[test]
fn variants_agree_after_targeted_updates() {
    // Updates that deliberately move values into and out of the indexed
    // range stress the index-maintenance paths of every variant.
    let values_len = PAGES * adaptive_storage_views::storage::VALUES_PER_PAGE;
    let k = 10_000u64;
    let mut writes = UpdateWorkload::new(5).targeted_writes(1_000, values_len, (0, k));
    writes.extend(UpdateWorkload::new(6).targeted_writes(
        1_000,
        values_len,
        (k + 1, DEFAULT_MAX_VALUE),
    ));
    all_variants_agree(&Distribution::uniform(), k, &writes);
}

#[test]
fn adaptive_layer_matches_explicit_baselines() {
    let dist = Distribution::sine();
    let values = dist.generate_pages(PAGES, 0xADA);
    let queries = QueryWorkload::new(3).fixed_selectivity(25, 0.05, dist.max_value());

    let mut adaptive = AdaptiveColumn::from_values(
        SimBackend::new(),
        &values,
        AdaptiveConfig::default().with_max_views(16),
    )
    .unwrap();
    for range in &queries {
        let outcome = adaptive.query(&RangeQuery::from_range(*range)).unwrap();
        let (count, sum) = reference(&values, range);
        assert_eq!((outcome.count, outcome.sum), (count, sum));
        // A freshly built explicit bitmap over the same range agrees too.
        let bitmap = BitmapIndex::build(SimBackend::new(), &values, *range).unwrap();
        let answer = bitmap.query(range);
        assert_eq!((answer.count, answer.sum), (count, sum));
    }
}
