//! Property-based tests over the whole stack.
//!
//! The build environment has no crates.io access, so instead of `proptest`
//! these run randomized cases from the workspace's seeded RNG shim — fully
//! deterministic for the hard-coded seeds. The central invariants:
//!
//! 1. For *any* data and *any* query sequence, the adaptive layer returns
//!    exactly the same answers as a naive filter over the raw values — in
//!    both routing modes, with and without the creation optimizations.
//! 2. For *any* update batch, batched view alignment leaves every partial
//!    view indexing exactly the pages a from-scratch rebuild would index.
//! 3. The retention policy never exceeds the configured view limit.

use adaptive_storage_views::core::{
    align_views_after_updates, build_view_for_range, CreationOptions, RoutingMode, ViewSet,
};
use adaptive_storage_views::prelude::*;
use adaptive_storage_views::storage::VALUES_PER_PAGE;
use adaptive_storage_views::vmem::Backend;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Small domains keep page-level clustering interesting while still hitting
/// lots of edge cases (empty ranges, full ranges, repeated values).
const MAX_VALUE: u64 = 10_000;

fn reference(values: &[u64], range: &ValueRange) -> (u64, u128) {
    values
        .iter()
        .filter(|v| range.contains(**v))
        .fold((0u64, 0u128), |(c, s), &v| (c + 1, s + v as u128))
}

/// Between a handful of rows and ~6 pages, values in a small domain.
fn arb_values(rng: &mut StdRng) -> Vec<u64> {
    let len = rng.gen_range(1usize..6 * VALUES_PER_PAGE);
    (0..len).map(|_| rng.gen_range(0..=MAX_VALUE)).collect()
}

fn arb_queries(rng: &mut StdRng) -> Vec<(u64, u64)> {
    let n = rng.gen_range(1usize..12);
    (0..n)
        .map(|_| (rng.gen_range(0..=MAX_VALUE), rng.gen_range(0..=MAX_VALUE)))
        .collect()
}

fn normalize(lo: u64, hi: u64) -> ValueRange {
    if lo <= hi {
        ValueRange::new(lo, hi)
    } else {
        ValueRange::new(hi, lo)
    }
}

#[test]
fn adaptive_answers_equal_naive_filter() {
    let mut rng = StdRng::seed_from_u64(0xADA0);
    for case in 0..48 {
        let values = arb_values(&mut rng);
        let queries = arb_queries(&mut rng);
        let multi_view = rng.gen_bool(0.5);
        let concurrent = rng.gen_bool(0.5);
        let max_views = rng.gen_range(1usize..8);
        let routing = if multi_view {
            RoutingMode::MultiView
        } else {
            RoutingMode::SingleView
        };
        let creation = if concurrent {
            CreationOptions::ALL
        } else {
            CreationOptions::COALESCED
        };
        let config = AdaptiveConfig::default()
            .with_routing(routing)
            .with_max_views(max_views)
            .with_creation(creation);
        let mut adaptive = AdaptiveColumn::from_values(SimBackend::new(), &values, config).unwrap();
        for &(lo, hi) in &queries {
            let range = normalize(lo, hi);
            let outcome = adaptive.query(&RangeQuery::from_range(range)).unwrap();
            let (count, sum) = reference(&values, &range);
            assert_eq!(outcome.count, count, "case {case}, query {range}");
            assert_eq!(outcome.sum, sum, "case {case}, query {range}");
            assert!(adaptive.views().num_partial_views() <= max_views);
        }
    }
}

#[test]
fn collected_rows_are_exactly_the_matching_rows() {
    let mut rng = StdRng::seed_from_u64(0xADA1);
    for case in 0..48 {
        let values = arb_values(&mut rng);
        let range = normalize(rng.gen_range(0..=MAX_VALUE), rng.gen_range(0..=MAX_VALUE));
        let mut adaptive =
            AdaptiveColumn::from_values(SimBackend::new(), &values, AdaptiveConfig::default())
                .unwrap();
        let outcome = adaptive
            .query_collect(&RangeQuery::from_range(range))
            .unwrap();
        let mut rows = outcome.rows.unwrap();
        rows.sort_unstable();
        let expected: Vec<u64> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| range.contains(**v))
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(rows, expected, "case {case}, query {range}");
    }
}

#[test]
fn alignment_equals_rebuild_for_any_batch() {
    let mut rng = StdRng::seed_from_u64(0xADA2);
    for case in 0..48 {
        let values = arb_values(&mut rng);
        let range = normalize(rng.gen_range(0..=MAX_VALUE), rng.gen_range(0..=MAX_VALUE));
        let num_writes = rng.gen_range(0usize..120);
        let writes: Vec<(usize, u64)> = (0..num_writes)
            .map(|_| {
                (
                    rng.gen_range(0usize..6 * VALUES_PER_PAGE) % values.len(),
                    rng.gen_range(0..=MAX_VALUE),
                )
            })
            .collect();

        let mut column = Column::from_values(SimBackend::new(), &values).unwrap();
        let mut views = ViewSet::new(2);
        let (buf, _) = build_view_for_range(&column, &range, &CreationOptions::COALESCED).unwrap();
        views.insert_unchecked(range, buf);

        let updates = column.write_batch(&writes);
        align_views_after_updates(&column, &mut views, &updates).unwrap();

        // Compare the aligned view's page set against a rebuild.
        let aligned: Vec<usize> = column
            .backend()
            .mapping_table(column.store(), views.partial_view(0).unwrap().buffer())
            .unwrap()
            .phys_pages_sorted();
        let expected: Vec<usize> = (0..column.num_pages())
            .filter(|&p| {
                column
                    .page_ref(p)
                    .values()
                    .iter()
                    .any(|v| range.contains(*v))
            })
            .collect();
        assert_eq!(aligned, expected, "case {case}, view {range}");

        // And scanning the aligned view answers the view's range exactly.
        let mut count = 0u64;
        for raw in adaptive_storage_views::vmem::ViewBuffer::iter_pages(
            views.partial_view(0).unwrap().buffer(),
        ) {
            count += column.wrap_view_page(raw).scan_filter(&range).count;
        }
        let current: Vec<u64> = column.to_vec();
        let (exp_count, _) = reference(&current, &range);
        assert_eq!(count, exp_count, "case {case}, view {range}");
    }
}

#[test]
fn full_view_scan_equals_naive_filter() {
    let mut rng = StdRng::seed_from_u64(0xADA3);
    for case in 0..48 {
        let values = arb_values(&mut rng);
        let range = normalize(rng.gen_range(0..=MAX_VALUE), rng.gen_range(0..=MAX_VALUE));
        let column = Column::from_values(SimBackend::new(), &values).unwrap();
        let res = column.full_scan(&range);
        let (count, sum) = reference(&values, &range);
        assert_eq!(res.count, count, "case {case}, query {range}");
        assert_eq!(res.sum, sum, "case {case}, query {range}");
    }
}
