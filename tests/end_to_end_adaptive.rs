//! End-to-end integration tests: workload generation → storage layer →
//! adaptive view layer, on both rewiring backends.

use adaptive_storage_views::core::{RoutingMode, SequenceStats};
use adaptive_storage_views::prelude::*;
use adaptive_storage_views::vmem::Backend;
use adaptive_storage_views::workloads::SweepSpec;

const PAGES: usize = 512;

fn reference_answer(values: &[u64], range: &ValueRange) -> (u64, u128) {
    values
        .iter()
        .filter(|v| range.contains(**v))
        .fold((0u64, 0u128), |(c, s), &v| (c + 1, s + v as u128))
}

fn run_sequence<B: Backend>(backend: B, dist: &Distribution, routing: RoutingMode) {
    let values = dist.generate_pages(PAGES, 0xE2E);
    let spec = SweepSpec {
        num_queries: 40,
        ..SweepSpec::default()
    };
    let queries = QueryWorkload::new(17).selectivity_sweep(&spec);
    let config = AdaptiveConfig::default()
        .with_routing(routing)
        .with_max_views(32);
    let mut adaptive = AdaptiveColumn::from_values(backend, &values, config).unwrap();
    let mut stats = SequenceStats::new();
    for range in &queries {
        let outcome = adaptive.query(&RangeQuery::from_range(*range)).unwrap();
        let (count, sum) = reference_answer(&values, range);
        assert_eq!(outcome.count, count, "{} {:?}", dist.name(), routing);
        assert_eq!(outcome.sum, sum, "{} {:?}", dist.name(), routing);
        stats.record(&outcome);
    }
    // The adaptive layer must have created at least one view on clustered
    // data and must scan fewer pages in total than pure full scanning.
    if dist.name() != "uniform" {
        assert!(
            adaptive.views().num_partial_views() > 0,
            "no views created for {}",
            dist.name()
        );
        assert!(
            stats.total_scanned_pages() < queries.len() * PAGES,
            "no scan savings for {}",
            dist.name()
        );
    }
}

#[test]
fn adaptive_sequences_are_exact_on_sim_backend() {
    for dist in [
        Distribution::sine(),
        Distribution::linear(),
        Distribution::sparse(),
        Distribution::uniform(),
    ] {
        run_sequence(SimBackend::new(), &dist, RoutingMode::SingleView);
        run_sequence(SimBackend::new(), &dist, RoutingMode::MultiView);
    }
}

#[cfg(all(feature = "mmap", target_os = "linux"))]
#[test]
fn adaptive_sequences_are_exact_on_mmap_backend() {
    for dist in [Distribution::sine(), Distribution::sparse()] {
        run_sequence(MmapBackend::new(), &dist, RoutingMode::SingleView);
        run_sequence(MmapBackend::new(), &dist, RoutingMode::MultiView);
    }
}

#[test]
fn later_queries_scan_fewer_pages_on_clustered_data() {
    let dist = Distribution::sine();
    let values = dist.generate_pages(PAGES, 1);
    let mut adaptive = AdaptiveColumn::from_values(
        AnyBackend::default_backend(),
        &values,
        AdaptiveConfig::paper_single_view(),
    )
    .unwrap();
    // Repeatedly query similar ranges: after the first query, partial views
    // should take over.
    let q = RangeQuery::new(10_000_000, 12_000_000);
    let first = adaptive.query(&q).unwrap();
    assert_eq!(first.scanned_pages, PAGES);
    let narrower = RangeQuery::new(10_500_000, 11_500_000);
    let second = adaptive.query(&narrower).unwrap();
    assert!(
        second.scanned_pages < PAGES / 2,
        "second query should use a partial view (scanned {})",
        second.scanned_pages
    );
}

#[test]
fn tables_hold_adaptive_ready_columns() {
    // The storage layer's table catalog composes with the adaptive layer.
    let backend = SimBackend::new();
    let mut table = Table::new("sensors");
    let temperature = Distribution::sine().generate_pages(64, 2);
    let pressure = Distribution::linear().generate_pages(64, 3);
    table
        .add_column_from_values("temperature", backend.clone(), &temperature)
        .unwrap();
    table
        .add_column_from_values("pressure", backend.clone(), &pressure)
        .unwrap();
    assert_eq!(table.num_columns(), 2);
    assert_eq!(table.num_rows(), temperature.len());
    // Wrap one column in the adaptive layer by re-materializing its data.
    let values = table.column("temperature").unwrap().to_vec();
    let mut adaptive =
        AdaptiveColumn::from_values(backend, &values, AdaptiveConfig::default()).unwrap();
    let q = RangeQuery::new(0, 50_000_000);
    let outcome = adaptive.query(&q).unwrap();
    let (count, _) = reference_answer(&temperature, q.range());
    assert_eq!(outcome.count, count);
}

#[test]
fn routing_mode_can_be_switched_mid_sequence() {
    let dist = Distribution::sine();
    let values = dist.generate_pages(256, 5);
    let mut adaptive = AdaptiveColumn::from_values(
        SimBackend::new(),
        &values,
        AdaptiveConfig::default().with_max_views(50),
    )
    .unwrap();
    for i in 0..10u64 {
        let lo = i * 9_000_000;
        let q = RangeQuery::new(lo, lo + 4_000_000);
        let a = adaptive.query(&q).unwrap();
        let (count, _) = reference_answer(&values, q.range());
        assert_eq!(a.count, count);
    }
    adaptive.set_routing(RoutingMode::MultiView);
    let q = RangeQuery::new(5_000_000, 85_000_000);
    let outcome = adaptive.query(&q).unwrap();
    let (count, sum) = reference_answer(&values, q.range());
    assert_eq!((outcome.count, outcome.sum), (count, sum));
}
